//! End-to-end protocol tests: index / search / compact / vacuum against a
//! live lake table, with concurrent lake mutations and injected crashes.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rottnest::invariants::{verify_all, verify_existence};
use rottnest::{IndexKind, Match, Query, Rottnest, RottnestConfig};
use rottnest_format::{ColumnData, DataType, Field, RecordBatch, Schema, WriterOptions};
use rottnest_ivfpq::SearchParams;
use rottnest_lake::{Table, TableConfig};
use rottnest_object_store::{FaultKind, MemoryStore, ObjectStore};

const DIM: usize = 8;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("trace_id", DataType::Binary),
        Field::new("body", DataType::Utf8),
        Field::new("embedding", DataType::VectorF32 { dim: DIM as u32 }),
    ])
}

/// Deterministic row content so tests can predict matches.
fn trace_id(i: u64) -> Vec<u8> {
    let mut id = vec![0u8; 16];
    id[..8].copy_from_slice(&i.to_be_bytes());
    id[8..].copy_from_slice(&i.wrapping_mul(0x9e3779b97f4a7c15).to_be_bytes());
    id
}

fn body(i: u64) -> String {
    format!(
        "event {i}: service frobnicator-{} emitted code E{:04}",
        i % 7,
        i % 100
    )
}

fn embedding(i: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(i);
    let cluster = (i % 5) as f32 * 10.0;
    (0..DIM)
        .map(|_| cluster + rng.gen_range(-0.5f32..0.5))
        .collect()
}

fn batch(range: std::ops::Range<u64>) -> RecordBatch {
    RecordBatch::new(
        schema(),
        vec![
            ColumnData::from_blobs(range.clone().map(trace_id)),
            ColumnData::from_strings(range.clone().map(body)),
            ColumnData::from_vectors(DIM as u32, range.map(embedding).collect::<Vec<_>>()).unwrap(),
        ],
    )
    .unwrap()
}

fn small_pages() -> TableConfig {
    TableConfig {
        writer: WriterOptions {
            page_raw_bytes: 2048,
            row_group_rows: 512,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn config() -> RottnestConfig {
    RottnestConfig {
        min_vector_rows: 16,
        ivf: rottnest_ivfpq::IvfPqParams {
            nlist: 16,
            m: 4,
            train_iters: 4,
            seed: 9,
        },
        ..Default::default()
    }
}

fn setup(rows: u64) -> (std::sync::Arc<MemoryStore>, String) {
    let store = MemoryStore::unmetered();
    let t = Table::create(store.as_ref(), "tbl", &schema(), small_pages()).unwrap();
    t.append(&batch(0..rows / 2)).unwrap();
    t.append(&batch(rows / 2..rows)).unwrap();
    (store, "tbl".to_string())
}

#[test]
fn uuid_index_and_search() {
    let (store, root) = setup(600);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());

    let entry = rot
        .index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .expect("new files indexed");
    assert_eq!(entry.files.len(), 2);
    assert_eq!(entry.rows, 600);

    let snap = table.snapshot().unwrap();
    let key = trace_id(123);
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 10 },
        )
        .unwrap();
    assert_eq!(out.matches.len(), 1);
    assert_eq!(out.matches[0].row, 123);
    assert_eq!(
        out.stats.files_brute_scanned, 0,
        "fully covered: no brute scan"
    );
    assert!(out.stats.pages_probed >= 1);

    // Missing key: no match, still no brute scan needed… but exact top-k
    // unsatisfied triggers the fallback only for *uncovered* files (none).
    let missing = trace_id(999_999);
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq {
                key: &missing,
                k: 10,
            },
        )
        .unwrap();
    assert!(out.matches.is_empty());

    verify_all(store.as_ref(), "idx").unwrap();
}

#[test]
fn substring_index_and_search() {
    let (store, root) = setup(400);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();

    let snap = table.snapshot().unwrap();
    // "code E0042" appears for i % 100 == 42 → global rows 42, 142, 242,
    // 342; each file holds 200 rows, so file-local rows are 42 and 142 in
    // both files.
    let out = rot
        .search(
            &table,
            &snap,
            "body",
            &Query::Substring {
                pattern: b"code E0042",
                k: 100,
            },
        )
        .unwrap();
    let paths: Vec<String> = snap.files().map(|f| f.path.clone()).collect();
    let mut got: Vec<(String, u64)> = out
        .matches
        .iter()
        .map(|m| (m.path.clone(), m.row))
        .collect();
    got.sort();
    assert_eq!(
        got,
        vec![
            (paths[0].clone(), 42),
            (paths[0].clone(), 142),
            (paths[1].clone(), 42),
            (paths[1].clone(), 142),
        ]
    );

    // k truncates.
    let out = rot
        .search(
            &table,
            &snap,
            "body",
            &Query::Substring {
                pattern: b"frobnicator",
                k: 5,
            },
        )
        .unwrap();
    assert_eq!(out.matches.len(), 5);
}

#[test]
fn vector_index_and_search() {
    let (store, root) = setup(500);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    rot.index(&table, IndexKind::Vector { dim: DIM as u32 }, "embedding")
        .unwrap()
        .unwrap();

    let snap = table.snapshot().unwrap();
    let q = embedding(77);
    let out = rot
        .search(
            &table,
            &snap,
            "embedding",
            &Query::VectorNn {
                query: &q,
                params: SearchParams {
                    k: 1,
                    nprobe: 8,
                    refine: 64,
                },
            },
        )
        .unwrap();
    assert_eq!(out.matches.len(), 1);
    assert_eq!(out.matches[0].row, 77, "query vector is a DB vector");
    assert_eq!(out.matches[0].score, Some(0.0));
}

#[test]
fn second_index_call_is_noop_and_new_data_gets_new_index() {
    let (store, root) = setup(200);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    assert!(rot
        .index(&table, IndexKind::Substring, "body")
        .unwrap()
        .is_some());
    assert!(rot
        .index(&table, IndexKind::Substring, "body")
        .unwrap()
        .is_none());

    table.append(&batch(200..300)).unwrap();
    let e = rot
        .index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    assert_eq!(e.files.len(), 1, "only the new file is indexed");
    assert_eq!(rot.meta().scan().unwrap().len(), 2);
}

#[test]
fn unindexed_files_fall_back_to_brute_force() {
    let (store, root) = setup(200);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();

    // New un-indexed file appears (Figure 4's f.parquet).
    table.append(&batch(200..260)).unwrap();
    let snap = table.snapshot().unwrap();
    let key = trace_id(237);
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 5 },
        )
        .unwrap();
    assert_eq!(out.matches.len(), 1);
    assert_eq!(out.matches[0].row, 37); // row within the third file
    assert_eq!(out.stats.files_brute_scanned, 1);

    // A key that the index satisfies never touches the new file.
    let key = trace_id(11);
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 1 },
        )
        .unwrap();
    assert_eq!(out.matches.len(), 1);
    assert_eq!(out.stats.files_brute_scanned, 0);
}

#[test]
fn lake_compaction_invalidates_postings_and_reindex_recovers() {
    let (store, root) = setup(300);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();

    // The lake compacts its two files into one (b+c → d of Figure 3).
    table.compact(u64::MAX).unwrap().unwrap();
    let snap = table.snapshot().unwrap();

    // Old index postings all point outside the snapshot: search falls back
    // to brute force and still finds everything.
    let out = rot
        .search(
            &table,
            &snap,
            "body",
            &Query::Substring {
                pattern: b"code E0007",
                k: 100,
            },
        )
        .unwrap();
    let mut rows: Vec<u64> = out.matches.iter().map(|m| m.row).collect();
    rows.sort_unstable();
    assert_eq!(rows, vec![7, 107, 207]);
    assert_eq!(out.stats.files_brute_scanned, 1);

    // Re-index covers the compacted file; brute force disappears.
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    let out = rot
        .search(
            &table,
            &snap,
            "body",
            &Query::Substring {
                pattern: b"code E0007",
                k: 100,
            },
        )
        .unwrap();
    assert_eq!(out.matches.len(), 3);
    assert_eq!(out.stats.files_brute_scanned, 0);
    verify_all(store.as_ref(), "idx").unwrap();
}

#[test]
fn deletion_vectors_filter_matches() {
    let (store, root) = setup(200);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();

    // Delete row 42 of the first file (body "code E0042").
    let first = table
        .snapshot()
        .unwrap()
        .files()
        .next()
        .unwrap()
        .path
        .clone();
    table.delete_rows(&first, &[42]).unwrap();

    let snap = table.snapshot().unwrap();
    let out = rot
        .search(
            &table,
            &snap,
            "body",
            &Query::Substring {
                pattern: b"code E0042",
                k: 100,
            },
        )
        .unwrap();
    let rows: Vec<u64> = out.matches.iter().map(|m| m.row).collect();
    assert_eq!(
        rows,
        vec![42],
        "only the second file's row 42 (i=142) remains"
    );
    assert_eq!(out.matches[0].path, snap.files().nth(1).unwrap().path);
    assert!(out.stats.rows_deleted >= 1);
}

#[test]
fn compact_merges_indexes_and_search_is_unchanged() {
    let store = MemoryStore::unmetered();
    let table = Table::create(store.as_ref(), "tbl", &schema(), small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());

    // Four appends, four index files.
    for i in 0..4u64 {
        table.append(&batch(i * 100..(i + 1) * 100)).unwrap();
        rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
            .unwrap()
            .unwrap();
    }
    assert_eq!(rot.meta().scan().unwrap().len(), 4);

    let merged = rot
        .compact(IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap();
    assert_eq!(merged.len(), 1);
    let entries = rot.meta().scan().unwrap();
    assert_eq!(entries.len(), 1, "four records swapped for one");
    assert_eq!(entries[0].files.len(), 4);

    let snap = table.snapshot().unwrap();
    for i in [5u64, 150, 250, 399] {
        let key = trace_id(i);
        let out = rot
            .search(
                &table,
                &snap,
                "trace_id",
                &Query::UuidEq { key: &key, k: 3 },
            )
            .unwrap();
        assert_eq!(out.matches.len(), 1, "key {i}");
        assert_eq!(out.matches[0].row, i % 100);
        assert_eq!(out.stats.index_files_queried, 1);
    }
    verify_all(store.as_ref(), "idx").unwrap();
}

#[test]
fn compact_merges_fm_indexes() {
    let store = MemoryStore::unmetered();
    let table = Table::create(store.as_ref(), "tbl", &schema(), small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    for i in 0..3u64 {
        table.append(&batch(i * 100..(i + 1) * 100)).unwrap();
        rot.index(&table, IndexKind::Substring, "body")
            .unwrap()
            .unwrap();
    }
    rot.compact(IndexKind::Substring, "body").unwrap();
    assert_eq!(rot.meta().scan().unwrap().len(), 1);

    let snap = table.snapshot().unwrap();
    let out = rot
        .search(
            &table,
            &snap,
            "body",
            &Query::Substring {
                pattern: b"code E0055",
                k: 10,
            },
        )
        .unwrap();
    let mut rows: Vec<u64> = out.matches.iter().map(|m| m.row).collect();
    rows.sort_unstable();
    assert_eq!(rows, vec![55, 55, 55]); // one per file, file-local row 55
}

#[test]
fn vacuum_drops_replaced_indexes_but_respects_timeout() {
    let store = MemoryStore::new(); // metered: clock advances
    let table = Table::create(store.as_ref(), "tbl", &schema(), small_pages()).unwrap();
    let mut cfg = config();
    cfg.index_timeout_ms = 60_000;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);

    for i in 0..3u64 {
        table.append(&batch(i * 50..(i + 1) * 50)).unwrap();
        rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
            .unwrap()
            .unwrap();
    }
    rot.compact(IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap();

    // Right after compaction, the three replaced files are too young.
    let report = rot.vacuum(&table).unwrap();
    assert_eq!(report.objects_deleted, 0);
    assert_eq!(report.objects_spared, 3);
    assert_eq!(store.list("idx/files/").unwrap().len(), 4);

    // After the timeout they go.
    store.clock().unwrap().advance_ms(61_000);
    let report = rot.vacuum(&table).unwrap();
    assert_eq!(report.objects_deleted, 3);
    assert_eq!(store.list("idx/files/").unwrap().len(), 1);

    // Search still works off the merged index.
    let snap = table.snapshot().unwrap();
    let key = trace_id(120);
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 1 },
        )
        .unwrap();
    assert_eq!(out.matches.len(), 1);
    verify_all(store.as_ref(), "idx").unwrap();
}

#[test]
fn crashed_commit_leaves_invariants_intact_and_vacuum_cleans_up() {
    let store = MemoryStore::new();
    let table = Table::create(store.as_ref(), "tbl", &schema(), small_pages()).unwrap();
    table.append(&batch(0..100)).unwrap();
    let mut cfg = config();
    cfg.index_timeout_ms = 60_000;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);

    // Crash between upload and commit: the metadata PUT fails.
    store
        .faults()
        .arm(FaultKind::FailPutMatching("idx/meta".into()));
    let err = rot.index(&table, IndexKind::Substring, "body");
    assert!(err.is_err(), "injected commit failure must surface");
    store.faults().disarm_all();

    // Invariants hold: the orphan index file is in B but not M.
    verify_all(store.as_ref(), "idx").unwrap();
    assert_eq!(store.list("idx/files/").unwrap().len(), 1);
    assert!(rot.meta().scan().unwrap().is_empty());

    // Young orphan survives vacuum (could be an in-flight indexer)…
    let report = rot.vacuum(&table).unwrap();
    assert_eq!(report.objects_deleted, 0);
    assert_eq!(report.objects_spared, 1);

    // …and is collected once older than the index timeout.
    store.clock().unwrap().advance_ms(61_000);
    let report = rot.vacuum(&table).unwrap();
    assert_eq!(report.objects_deleted, 1);
    assert!(store.list("idx/files/").unwrap().is_empty());

    // Retry succeeds.
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    verify_all(store.as_ref(), "idx").unwrap();
}

#[test]
fn vanished_input_file_aborts_indexing() {
    let (store, root) = setup(100);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    // Simulate the data lake garbage-collecting a file mid-index.
    let victim = table
        .snapshot()
        .unwrap()
        .files()
        .next()
        .unwrap()
        .path
        .clone();
    store.faults().arm(FaultKind::FailGetMatching(victim));
    let err = rot.index(&table, IndexKind::Substring, "body").unwrap_err();
    assert!(matches!(
        err,
        rottnest::RottnestError::Aborted(_) | rottnest::RottnestError::Store(_)
    ));
    store.faults().disarm_all();
    verify_existence(store.as_ref(), "idx").unwrap();
}

#[test]
fn vector_search_merges_index_and_brute_results() {
    let (store, root) = setup(300);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    rot.index(&table, IndexKind::Vector { dim: DIM as u32 }, "embedding")
        .unwrap()
        .unwrap();

    // New un-indexed file holds the best match for its own vectors.
    table.append(&batch(300..350)).unwrap();
    let snap = table.snapshot().unwrap();
    let q = embedding(333);
    let out = rot
        .search(
            &table,
            &snap,
            "embedding",
            &Query::VectorNn {
                query: &q,
                params: SearchParams {
                    k: 1,
                    nprobe: 16,
                    refine: 64,
                },
            },
        )
        .unwrap();
    assert_eq!(out.matches[0].score, Some(0.0));
    assert_eq!(out.matches[0].row, 33);
    assert_eq!(
        out.stats.files_brute_scanned, 1,
        "scoring queries scan uncovered files"
    );
}

#[test]
fn min_vector_rows_aborts_in_favor_of_brute_force() {
    let store = MemoryStore::unmetered();
    let table = Table::create(store.as_ref(), "tbl", &schema(), small_pages()).unwrap();
    table.append(&batch(0..8)).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    assert!(rot
        .index(&table, IndexKind::Vector { dim: DIM as u32 }, "embedding")
        .unwrap()
        .is_none());

    // Search still answers via brute force.
    let snap = table.snapshot().unwrap();
    let q = embedding(3);
    let out = rot
        .search(
            &table,
            &snap,
            "embedding",
            &Query::VectorNn {
                query: &q,
                params: SearchParams {
                    k: 1,
                    nprobe: 4,
                    refine: 8,
                },
            },
        )
        .unwrap();
    assert_eq!(out.matches[0].row, 3);
    assert_eq!(out.stats.files_brute_scanned, 1);
}

#[test]
fn search_snapshot_time_travel() {
    let (store, root) = setup(100);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    let old_version = table.snapshot().unwrap().version();

    table.append(&batch(100..200)).unwrap();
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();

    // Searching the old snapshot must not see the new file's rows.
    let old_snap = table.snapshot_at(old_version).unwrap();
    let key = trace_id(150);
    let out = rot
        .search(
            &table,
            &old_snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 5 },
        )
        .unwrap();
    assert!(
        out.matches.is_empty(),
        "row 150 exists only after the snapshot"
    );

    let new_snap = table.snapshot().unwrap();
    let out = rot
        .search(
            &table,
            &new_snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 5 },
        )
        .unwrap();
    assert_eq!(out.matches.len(), 1);
}

#[test]
fn search_equals_brute_force_ground_truth() {
    // The canonical correctness check: indexed search == full scan, across
    // lake mutations.
    let (store, root) = setup(240);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    table
        .delete_rows(
            &table
                .snapshot()
                .unwrap()
                .files()
                .next()
                .unwrap()
                .path
                .clone(),
            &[14, 114],
        )
        .unwrap();
    table.append(&batch(240..280)).unwrap();

    let snap = table.snapshot().unwrap();
    for pattern in ["code E0014", "frobnicator-3", "event 27"] {
        let out = rot
            .search(
                &table,
                &snap,
                "body",
                &Query::Substring {
                    pattern: pattern.as_bytes(),
                    k: 10_000,
                },
            )
            .unwrap();
        let mut got: Vec<(String, u64)> = out
            .matches
            .iter()
            .map(|m| (m.path.clone(), m.row))
            .collect();
        got.sort();

        // Ground truth by scanning every file.
        let mut want: Vec<(String, u64)> = Vec::new();
        for f in snap.files() {
            let reader = rottnest_format::ChunkReader::open(store.as_ref(), &f.path).unwrap();
            let col = reader.read_column(1).unwrap();
            let dv = table.load_dv(f).unwrap().unwrap_or_default();
            for i in 0..col.len() {
                if dv.contains(i as u64) {
                    continue;
                }
                if let Some(rottnest_format::ValueRef::Utf8(s)) = col.get(i) {
                    if s.contains(pattern) {
                        want.push((f.path.clone(), i as u64));
                    }
                }
            }
        }
        want.sort();
        assert_eq!(got, want, "pattern {pattern:?}");
    }
}

#[test]
fn concurrent_searches_during_maintenance() {
    let (store, root) = setup(200);
    {
        let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
        let rot = Rottnest::new(store.as_ref(), "idx", config());
        rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
            .unwrap()
            .unwrap();
    }
    crossbeam::scope(|scope| {
        // Searchers.
        for t in 0..4u64 {
            let store = &store;
            let root = &root;
            scope.spawn(move |_| {
                let table = Table::open(store.as_ref(), root, small_pages()).unwrap();
                let rot = Rottnest::new(store.as_ref(), "idx", config());
                for i in 0..20u64 {
                    let snap = table.snapshot().unwrap();
                    let key = trace_id((t * 20 + i) % 200);
                    let out = rot
                        .search(
                            &table,
                            &snap,
                            "trace_id",
                            &Query::UuidEq { key: &key, k: 1 },
                        )
                        .unwrap();
                    assert_eq!(out.matches.len(), 1);
                }
            });
        }
        // Maintenance: appends + indexing + compaction.
        let store = &store;
        let root = &root;
        scope.spawn(move |_| {
            let table = Table::open(store.as_ref(), root, small_pages()).unwrap();
            let rot = Rottnest::new(store.as_ref(), "idx", config());
            for j in 0..3u64 {
                table.append(&batch(200 + j * 50..250 + j * 50)).unwrap();
                rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
                    .unwrap();
            }
            rot.compact(IndexKind::Uuid { key_len: 16 }, "trace_id")
                .unwrap();
        });
    })
    .unwrap();
    verify_all(store.as_ref(), "idx").unwrap();
}

#[test]
fn index_timeout_aborts_before_commit() {
    let store = MemoryStore::new(); // latency model advances the clock
    let table = Table::create(store.as_ref(), "tbl", &schema(), small_pages()).unwrap();
    table.append(&batch(0..50)).unwrap();
    let mut cfg = config();
    cfg.index_timeout_ms = 0; // everything times out
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    let err = rot.index(&table, IndexKind::Substring, "body").unwrap_err();
    assert!(matches!(err, rottnest::RottnestError::Aborted(_)));
    // Nothing was committed.
    assert!(rot.meta().scan().unwrap().is_empty());
    verify_existence(store.as_ref(), "idx").unwrap();
}

#[test]
fn matches_report_correct_paths() {
    let (store, root) = setup(100);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    let snap = table.snapshot().unwrap();
    let paths: Vec<String> = snap.files().map(|f| f.path.clone()).collect();

    let key = trace_id(10); // first file
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 1 },
        )
        .unwrap();
    assert_eq!(
        out.matches,
        vec![Match {
            path: paths[0].clone(),
            row: 10,
            score: None
        }]
    );

    let key = trace_id(60); // second file (rows 50..100), row 10 within it
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 1 },
        )
        .unwrap();
    assert_eq!(
        out.matches,
        vec![Match {
            path: paths[1].clone(),
            row: 10,
            score: None
        }]
    );
}

#[test]
fn metadata_survives_store_payload_inspection() {
    // Guards the metadata byte format: write entries, re-open from a fresh
    // handle backed by the same bytes.
    let (store, root) = setup(100);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();

    let rot2 = Rottnest::new(store.as_ref(), "idx", config());
    let entries = rot2.meta().scan().unwrap();
    assert_eq!(entries.len(), 2);
    let kinds: Vec<&str> = entries
        .iter()
        .map(|e| match e.kind {
            IndexKind::Uuid { .. } => "uuid",
            IndexKind::Substring => "substring",
            IndexKind::Vector { .. } => "vector",
            IndexKind::Bloom { .. } => "bloom",
        })
        .collect();
    assert!(kinds.contains(&"uuid") && kinds.contains(&"substring"));

    // Raw log payloads are non-empty objects under idx/meta/_log/.
    let log_objects = store.list("idx/meta/_log/").unwrap();
    assert_eq!(log_objects.len(), 2);
    for o in log_objects {
        assert!(store.get(&o.key).unwrap() != Bytes::new());
    }
}

#[test]
fn zorder_rewrite_is_survived_like_compaction() {
    let (store, root) = setup(200);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();

    // A clustering rewrite replaces every file the index points at.
    table.rewrite_sorted(0).unwrap();
    let snap = table.snapshot().unwrap();
    let key = trace_id(77);
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 1 },
        )
        .unwrap();
    assert_eq!(out.matches.len(), 1, "found via brute-force fallback");
    assert_eq!(out.stats.files_brute_scanned, 1);

    // Re-index covers the rewritten file.
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 1 },
        )
        .unwrap();
    assert_eq!(out.matches.len(), 1);
    assert_eq!(out.stats.files_brute_scanned, 0);
    verify_all(store.as_ref(), "idx").unwrap();
}

#[test]
fn metadata_checkpoint_reduces_plan_requests() {
    let store = MemoryStore::unmetered();
    let table = Table::create(store.as_ref(), "tbl", &schema(), small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());
    for i in 0..8u64 {
        table.append(&batch(i * 20..(i + 1) * 20)).unwrap();
        rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
            .unwrap()
            .unwrap();
    }
    let snap = table.snapshot().unwrap();
    let key = trace_id(35);

    let measure = || {
        let before = store.stats();
        let out = rot
            .search(
                &table,
                &snap,
                "trace_id",
                &Query::UuidEq { key: &key, k: 1 },
            )
            .unwrap();
        assert_eq!(out.matches.len(), 1);
        store.stats().since(&before).gets
    };
    let gets_before = measure();
    rot.checkpoint_meta().unwrap();
    let gets_after = measure();
    // The 8 per-version metadata log GETs collapse into 1 checkpoint GET.
    assert!(
        gets_after + 6 <= gets_before,
        "checkpoint should cut plan requests: {gets_before} -> {gets_after}"
    );
    verify_all(store.as_ref(), "idx").unwrap();
}

#[test]
fn bloom_index_serves_uuid_queries_with_in_situ_filtering() {
    let (store, root) = setup(400);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", config());

    // Index with the Bloom kind instead of the trie.
    let entry = rot
        .index(&table, IndexKind::Bloom { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    assert!(matches!(entry.kind, IndexKind::Bloom { key_len: 16 }));

    let snap = table.snapshot().unwrap();
    // Indexed keys are always found (no false negatives)…
    for i in [0u64, 123, 399] {
        let key = trace_id(i);
        let out = rot
            .search(
                &table,
                &snap,
                "trace_id",
                &Query::UuidEq { key: &key, k: 5 },
            )
            .unwrap();
        assert_eq!(out.matches.len(), 1, "key {i}");
        assert_eq!(out.matches[0].row, i % 200);
        assert_eq!(out.stats.files_brute_scanned, 0);
    }
    // …and misses return nothing (any filter false positives are killed by
    // the in-situ probe).
    let missing = trace_id(5_000_000);
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq {
                key: &missing,
                k: 5,
            },
        )
        .unwrap();
    assert!(out.matches.is_empty());
    verify_all(store.as_ref(), "idx").unwrap();
}

#[test]
fn bloom_compaction_and_vacuum() {
    let store = MemoryStore::new();
    let table = Table::create(store.as_ref(), "tbl", &schema(), small_pages()).unwrap();
    let mut cfg = config();
    cfg.index_timeout_ms = 1_000;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    for i in 0..3u64 {
        table.append(&batch(i * 80..(i + 1) * 80)).unwrap();
        rot.index(&table, IndexKind::Bloom { key_len: 16 }, "trace_id")
            .unwrap()
            .unwrap();
    }
    let merged = rot
        .compact(IndexKind::Bloom { key_len: 16 }, "trace_id")
        .unwrap();
    assert_eq!(merged.len(), 1);
    store.clock().unwrap().advance_ms(2_000);
    rot.vacuum(&table).unwrap();

    let snap = table.snapshot().unwrap();
    for i in [10u64, 100, 230] {
        let key = trace_id(i);
        let out = rot
            .search(
                &table,
                &snap,
                "trace_id",
                &Query::UuidEq { key: &key, k: 3 },
            )
            .unwrap();
        assert_eq!(out.matches.len(), 1, "key {i}");
        assert_eq!(out.stats.index_files_queried, 1);
    }
    verify_all(store.as_ref(), "idx").unwrap();
}

#[test]
fn bloom_index_is_smaller_than_trie() {
    let (store, root) = setup(2000);
    let table = Table::open(store.as_ref(), &root, small_pages()).unwrap();
    let rot_trie = Rottnest::new(store.as_ref(), "idx-trie", config());
    let rot_bloom = Rottnest::new(store.as_ref(), "idx-bloom", config());
    let te = rot_trie
        .index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    let be = rot_bloom
        .index(&table, IndexKind::Bloom { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    assert!(
        be.size < te.size,
        "bloom ({}) should undercut trie ({})",
        be.size,
        te.size
    );
}
