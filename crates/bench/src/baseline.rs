//! Pre-optimization reference kernels for the succinct-structure
//! microbenchmarks.
//!
//! These replicate the rank bit vector and wavelet-matrix traversals as
//! they were *before* the branch-light kernel pass — a scan-based rank
//! (cumulative count every 8 words, then popcount word by word) and
//! unfused wavelet descents (two independent boundary ranks per backward
//! search step, no early exit, no pinned-interval shortcut). They exist so
//! `benches/kernels.rs` and the `bench_kernels` binary can measure the
//! optimized kernels against the exact old code in the same process and
//! the bench gate can hold the ratio; production code never uses them.

/// The pre-directory rank bit vector: cumulative ones every 512-bit
/// superblock, word-scan within the block.
#[derive(Debug, Clone)]
pub struct ScanRankBitVec {
    len: usize,
    words: Vec<u64>,
    counts: Vec<u32>,
}

const WORDS_PER_BLOCK: usize = 8;

impl ScanRankBitVec {
    /// Builds from a bit slice.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut words = vec![0u64; bits.len().div_ceil(64)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        let n_blocks = words.len().div_ceil(WORDS_PER_BLOCK);
        let mut counts = Vec::with_capacity(n_blocks + 1);
        let mut acc = 0u32;
        counts.push(0);
        for block in words.chunks(WORDS_PER_BLOCK) {
            acc += block.iter().map(|w| w.count_ones()).sum::<u32>();
            counts.push(acc);
        }
        Self {
            len: bits.len(),
            words,
            counts,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of 1-bits in `[0, i)` — superblock count plus up to 7 word
    /// popcounts plus a branchy partial word.
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let word = i / 64;
        let block = word / WORDS_PER_BLOCK;
        let mut acc = self.counts[block] as usize;
        for w in &self.words[block * WORDS_PER_BLOCK..word] {
            acc += w.count_ones() as usize;
        }
        let rem = i % 64;
        if rem > 0 {
            acc += (self.words[word] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        acc
    }

    /// Number of 0-bits in `[0, i)`.
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }
}

/// The pre-fusion wavelet matrix: every query descends all 8 levels and
/// every boundary pays its own rank.
#[derive(Debug, Clone)]
pub struct ScanWavelet {
    len: usize,
    levels: Vec<ScanRankBitVec>,
    zeros: Vec<usize>,
}

const LEVELS: usize = 8;

impl ScanWavelet {
    /// Builds from a symbol slice (same partitioning as the real matrix).
    pub fn build(symbols: &[u8]) -> Self {
        let mut current: Vec<u8> = symbols.to_vec();
        let mut levels = Vec::with_capacity(LEVELS);
        let mut zeros = Vec::with_capacity(LEVELS);
        for level in 0..LEVELS {
            let shift = 7 - level;
            let bits: Vec<bool> = current.iter().map(|&s| (s >> shift) & 1 == 1).collect();
            let mut zero_part = Vec::new();
            let mut one_part = Vec::new();
            for &sym in &current {
                if (sym >> shift) & 1 == 1 {
                    one_part.push(sym);
                } else {
                    zero_part.push(sym);
                }
            }
            zeros.push(zero_part.len());
            levels.push(ScanRankBitVec::from_bits(&bits));
            zero_part.extend_from_slice(&one_part);
            current = zero_part;
        }
        Self {
            len: symbols.len(),
            levels,
            zeros,
        }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Occurrences of `sym` in `[0, i)`, always descending all 8 levels.
    pub fn rank(&self, sym: u8, i: usize) -> usize {
        let mut lo = 0usize;
        let mut hi = i;
        for (level, bv) in self.levels.iter().enumerate() {
            if (sym >> (7 - level)) & 1 == 1 {
                let z = self.zeros[level];
                lo = z + bv.rank1(lo);
                hi = z + bv.rank1(hi);
            } else {
                lo = bv.rank0(lo);
                hi = bv.rank0(hi);
            }
        }
        hi - lo
    }

    /// The unfused backward-search step: two independent boundary ranks.
    pub fn rank_pair(&self, sym: u8, start: usize, end: usize) -> (usize, usize) {
        (self.rank(sym, start), self.rank(sym, end))
    }

    /// The unfused LF-step pair: symbol descent paying two ranks per level
    /// for the interval start and the position.
    pub fn access_and_rank(&self, i: usize) -> (u8, usize) {
        let mut sym = 0u8;
        let mut start = 0usize;
        let mut pos = i;
        for (level, bv) in self.levels.iter().enumerate() {
            let bit = bv.get(pos);
            sym = (sym << 1) | u8::from(bit);
            if bit {
                let z = self.zeros[level];
                pos = z + bv.rank1(pos);
                start = z + bv.rank1(start);
            } else {
                pos = bv.rank0(pos);
                start = bv.rank0(start);
            }
        }
        (sym, pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rottnest_fm::bitvec::BitVecBuilder;
    use rottnest_fm::wavelet::WaveletMatrix;

    /// The baselines must agree with the optimized kernels everywhere —
    /// otherwise the measured ratios compare different functions.
    #[test]
    fn baselines_agree_with_optimized_kernels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let bits: Vec<bool> = (0..3000).map(|_| rng.gen_bool(0.4)).collect();
        let old = ScanRankBitVec::from_bits(&bits);
        let mut b = BitVecBuilder::with_capacity(bits.len());
        for &bit in &bits {
            b.push(bit);
        }
        let new = b.finish();
        for i in 0..=bits.len() {
            assert_eq!(old.rank1(i), new.rank1(i), "rank1({i})");
        }

        let symbols: Vec<u8> = (0..2000).map(|_| rng.gen()).collect();
        let old_wm = ScanWavelet::build(&symbols);
        let new_wm = WaveletMatrix::build(&symbols);
        for i in (0..symbols.len()).step_by(7) {
            assert_eq!(old_wm.access_and_rank(i), new_wm.access_and_rank(i));
            for sym in [0u8, b'a', 128, 255] {
                assert_eq!(old_wm.rank(sym, i), new_wm.rank(sym, i));
                assert_eq!(
                    old_wm.rank_pair(sym, i / 2, i),
                    new_wm.rank_range(sym, i / 2, i)
                );
            }
        }
    }
}
