//! Shared harness for the per-figure benchmark binaries.
//!
//! Each `src/bin/figN_*.rs` binary regenerates one figure of the paper:
//! it builds a scaled-down scenario on the metered in-memory object store,
//! measures simulated latencies and request/byte counts, derives the TCO
//! parameters of §VI, extrapolates them to the paper's dataset sizes
//! (linear in dataset size per §VII-D2), and writes the figure's series to
//! `results/*.csv` plus a human-readable summary on stdout.

pub mod baseline;

use std::sync::Arc;

use rottnest::{IndexKind, Query, Rottnest, RottnestConfig};
use rottnest_format::WriterOptions;
use rottnest_lake::{Table, TableConfig};
use rottnest_object_store::{MemoryStore, ObjectStore};
use rottnest_tco::{cpm_storage, cpq_from_latency, prices, ApproachCosts, Approaches};
use rottnest_workloads::{TextWorkload, UuidWorkload, VectorWorkload};

/// Where result CSVs land.
pub const RESULTS_DIR: &str = "results";

/// Writes a CSV under `results/` and echoes the path.
pub fn write_csv(name: &str, content: &str) {
    std::fs::create_dir_all(RESULTS_DIR).expect("create results dir");
    let path = format!("{RESULTS_DIR}/{name}");
    std::fs::write(&path, content).expect("write results csv");
    println!("wrote {path}");
}

/// Simulated seconds elapsed on the store clock while running `f`.
pub fn sim_seconds<T>(store: &MemoryStore, f: impl FnOnce() -> T) -> (T, f64) {
    let clock = store.clock().expect("metered store");
    let (out, us) = clock.time(f);
    (out, us as f64 / 1e6)
}

/// A built evaluation scenario: lake + Rottnest index + the workload's
/// queries, all on one metered store.
pub struct Scenario {
    /// The metered store (latency model on, throttling on).
    pub store: Arc<MemoryStore>,
    /// Lake table root.
    pub table_root: String,
    /// Rottnest index dir.
    pub index_dir: String,
    /// Raw (compressed) dataset bytes on the lake.
    pub data_bytes: u64,
    /// Committed Rottnest index bytes.
    pub index_bytes: u64,
    /// Simulated seconds spent building + compacting the index.
    pub index_build_seconds: f64,
}

/// Column names used by every scenario.
pub const TEXT_COL: &str = "body";
/// UUID column.
pub const UUID_COL: &str = "trace_id";
/// Vector column.
pub const VEC_COL: &str = "embedding";

fn table_config() -> TableConfig {
    TableConfig {
        writer: WriterOptions {
            page_raw_bytes: 16 << 10,
            row_group_rows: 1 << 20,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Rottnest config tuned for harness scale.
pub fn harness_config() -> RottnestConfig {
    RottnestConfig {
        min_vector_rows: 64,
        ivf: rottnest_ivfpq::IvfPqParams {
            nlist: 64,
            m: 8,
            train_iters: 5,
            seed: 17,
        },
        ..Default::default()
    }
}

/// Builds a text-lake scenario (`files` files × `docs_per_file` docs) and
/// indexes it with the substring index. Returns the scenario and the
/// workload generator (for query words).
pub fn text_scenario(files: usize, docs_per_file: usize, seed: u64) -> (Scenario, TextWorkload) {
    let store = MemoryStore::new();
    let table = Table::create(
        store.as_ref(),
        "lake",
        &rottnest_workloads::text_batch(TEXT_COL, &[])
            .schema()
            .clone(),
        table_config(),
    )
    .unwrap();
    let mut wl = TextWorkload::new(seed, 20_000, 60);
    for f in 0..files {
        let docs = wl.docs_with_needle(
            docs_per_file,
            &format!("NEEDLE-{f:04}-XYZZY"),
            &[docs_per_file / 2],
        );
        table
            .append(&rottnest_workloads::text_batch(TEXT_COL, &docs))
            .unwrap();
    }
    let data_bytes = store.bytes_under("lake/data/");

    let rot = Rottnest::new(store.as_ref(), "idx", harness_config());
    let (_, build_s) = sim_seconds(&store, || {
        rot.index(&table, IndexKind::Substring, TEXT_COL).unwrap()
    });
    let index_bytes = rot.index_bytes().unwrap();
    (
        Scenario {
            store,
            table_root: "lake".into(),
            index_dir: "idx".into(),
            data_bytes,
            index_bytes,
            index_build_seconds: build_s,
        },
        wl,
    )
}

/// Builds a UUID-lake scenario with `files` files × `keys_per_file` keys.
/// Returns the scenario and the keys (queries draw from them).
pub fn uuid_scenario(files: usize, keys_per_file: usize, seed: u64) -> (Scenario, Vec<Vec<u8>>) {
    let store = MemoryStore::new();
    let schema = rottnest_workloads::uuid_batch(UUID_COL, &[])
        .schema()
        .clone();
    let table = Table::create(store.as_ref(), "lake", &schema, table_config()).unwrap();
    let mut wl = UuidWorkload::new(seed, 16);
    let mut all = Vec::new();
    for _ in 0..files {
        let keys = wl.keys(keys_per_file);
        table
            .append(&rottnest_workloads::uuid_batch(UUID_COL, &keys))
            .unwrap();
        all.extend(keys);
    }
    let data_bytes = store.bytes_under("lake/data/");
    let rot = Rottnest::new(store.as_ref(), "idx", harness_config());
    let (_, build_s) = sim_seconds(&store, || {
        rot.index(&table, IndexKind::Uuid { key_len: 16 }, UUID_COL)
            .unwrap()
    });
    let index_bytes = rot.index_bytes().unwrap();
    (
        Scenario {
            store,
            table_root: "lake".into(),
            index_dir: "idx".into(),
            data_bytes,
            index_bytes,
            index_build_seconds: build_s,
        },
        all,
    )
}

/// Builds a vector-lake scenario. Returns the scenario and query vectors.
pub fn vector_scenario(
    files: usize,
    vecs_per_file: usize,
    dim: usize,
    seed: u64,
) -> (Scenario, Vec<Vec<f32>>) {
    let store = MemoryStore::new();
    let schema = rottnest_workloads::vector_batch(VEC_COL, dim as u32, vec![])
        .schema()
        .clone();
    let table = Table::create(store.as_ref(), "lake", &schema, table_config()).unwrap();
    let mut wl = VectorWorkload::new(seed, dim, 24, 0.6);
    for _ in 0..files {
        let vs = wl.vectors(vecs_per_file);
        table
            .append(&rottnest_workloads::vector_batch(VEC_COL, dim as u32, vs))
            .unwrap();
    }
    let data_bytes = store.bytes_under("lake/data/");
    let rot = Rottnest::new(store.as_ref(), "idx", harness_config());
    let (_, build_s) = sim_seconds(&store, || {
        rot.index(&table, IndexKind::Vector { dim: dim as u32 }, VEC_COL)
            .unwrap()
    });
    let index_bytes = rot.index_bytes().unwrap();
    let queries = (0..32).map(|_| wl.query()).collect();
    (
        Scenario {
            store,
            table_root: "lake".into(),
            index_dir: "idx".into(),
            data_bytes,
            index_bytes,
            index_build_seconds: build_s,
        },
        queries,
    )
}

impl Scenario {
    /// Opens the lake table.
    pub fn table(&self) -> Table<'_> {
        Table::open(self.store.as_ref(), self.table_root.clone(), table_config()).unwrap()
    }

    /// Opens the Rottnest client.
    pub fn rottnest(&self) -> Rottnest<'_> {
        Rottnest::new(
            self.store.as_ref(),
            self.index_dir.clone(),
            harness_config(),
        )
    }

    /// Mean simulated Rottnest search latency (seconds) over `queries`.
    pub fn rottnest_latency(&self, column: &str, queries: &[Query<'_>]) -> f64 {
        let table = self.table();
        let snapshot = table.snapshot().unwrap();
        let rot = self.rottnest();
        let mut total = 0.0;
        for q in queries {
            let (_, s) = sim_seconds(&self.store, || {
                rot.search(&table, &snapshot, column, q).unwrap()
            });
            total += s;
        }
        total / queries.len() as f64
    }

    /// Mean simulated single-worker brute-force latency (seconds).
    pub fn brute_latency(&self, column: &str, queries: &[Query<'_>]) -> f64 {
        use rottnest_baselines::BruteForce;
        let table = self.table();
        let bf = BruteForce::new(&table, table.snapshot().unwrap());
        let mut total = 0.0;
        for q in queries {
            let (_, s) = sim_seconds(&self.store, || match q {
                Query::UuidEq { key, k } => {
                    bf.scan_uuid(column, key, *k).unwrap();
                }
                Query::Substring { pattern, k } => {
                    bf.scan_substring(column, pattern, *k).unwrap();
                }
                Query::VectorNn { query, params } => {
                    bf.scan_vector(column, query, params.k).unwrap();
                }
            });
            total += s;
        }
        total / queries.len() as f64
    }
}

/// Derived TCO parameters for one application, extrapolated to the paper's
/// dataset scale.
#[derive(Debug, Clone, Copy)]
pub struct TcoInputs {
    /// Measured mean Rottnest latency (s).
    pub rottnest_latency_s: f64,
    /// Measured mean 1-worker brute latency (s), pre-extrapolation.
    pub brute_latency_1w_s: f64,
    /// Dataset scale factor (paper bytes / harness bytes).
    pub scale: f64,
    /// Harness dataset bytes.
    pub data_bytes: u64,
    /// Harness index bytes.
    pub index_bytes: u64,
    /// Harness index build seconds.
    pub build_seconds: f64,
    /// Dedicated node hourly price.
    pub dedicated_hourly: f64,
}

impl TcoInputs {
    /// Assembles the three approaches' cost models (§VI / §VII preamble).
    pub fn approaches(&self) -> Approaches {
        let scale = self.scale;
        let data_bytes = self.data_bytes as f64 * scale;
        let index_bytes = self.index_bytes as f64 * scale;

        // Brute force: 8 × r6i.4xlarge (the paper's most cost-efficient
        // configuration). Only the *transfer* component of the measured
        // harness latency scales with dataset size — the fixed first-byte
        // latencies amortize at scale — so the paper-scale one-worker scan
        // adds the extra bytes at the worker's effective scan bandwidth.
        const SCAN_BW_PER_WORKER: f64 = 400e6; // B/s, r6i.4xlarge multi-stream
        let extra_bytes = data_bytes - self.data_bytes as f64;
        let brute = rottnest_tco::ClusterModel {
            spinup_seconds: 2.0,
            serial_seconds: 0.5,
            scan_seconds_1worker: self.brute_latency_1w_s
                + extra_bytes.max(0.0) / SCAN_BW_PER_WORKER,
            straggler_coeff: 0.08,
            hourly_rate: prices::R6I_4XLARGE_HOURLY,
        };
        let brute_force = ApproachCosts {
            index_cost: 0.0,
            cost_per_month: cpm_storage(data_bytes),
            cost_per_query: brute.cost_per_query(8),
        };

        // Rottnest: one worker; post-compaction latency is ~scale-free
        // (§VII-D2), storage adds the index, indexing cost scales with data.
        let rottnest = ApproachCosts {
            index_cost: (self.build_seconds * scale) / 3600.0 * prices::R6I_4XLARGE_HOURLY,
            cost_per_month: cpm_storage(data_bytes + index_bytes),
            cost_per_query: cpq_from_latency(
                self.rottnest_latency_s,
                1.0,
                prices::R6I_4XLARGE_HOURLY,
            ),
        };

        // Copy data: 3 always-on nodes + replicated EBS for the index.
        let copy_data = ApproachCosts {
            index_cost: 0.0,
            cost_per_month: prices::dedicated_monthly(self.dedicated_hourly, index_bytes),
            cost_per_query: 0.0,
        };

        Approaches {
            copy_data,
            brute_force,
            rottnest,
        }
    }
}
