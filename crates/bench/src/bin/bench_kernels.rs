//! Succinct-kernel regression bench: measures the branch-light kernels
//! against their pre-optimization baselines **in the same run** and writes
//! the CPU ratios to `BENCH_kernels.json` for the bench gate.
//!
//! Three kernel pairs are timed (best-of-`REPS` over a fixed query batch,
//! both sides interleaved so frequency scaling hits them equally):
//!
//! * `kernel_rank1` — interleaved rank9-style directory vs. the word-scan
//!   superblock rank;
//! * `kernel_lf_step` — fused `access_and_rank` (pinned-interval descent)
//!   vs. the double-rank-per-level descent on the scan bit vector;
//! * `kernel_rank_range` — fused boundary-pair traversal (3 ranks/level,
//!   early exits) vs. two independent full descents.
//!
//! Raw nanoseconds are machine-dependent, so the gated `kernel_speedup` is
//! the measured ratio **saturated at a per-kernel cap** chosen well below
//! what this code reaches in practice — the gate then asserts "still at
//! least this many times faster than the old kernels" without tracking
//! host noise above the cap. The uncapped ratio is recorded alongside as
//! `measured_speedup` (never gated).

use std::hint::black_box;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rottnest_bench::baseline::{ScanRankBitVec, ScanWavelet};
use rottnest_fm::bitvec::BitVecBuilder;
use rottnest_fm::wavelet::WaveletMatrix;

const BITS: usize = 1 << 20;
const SYMS: usize = 1 << 18;
const QUERIES: usize = 4096;
const REPS: usize = 15;

/// Gated saturation points: measured speedups above the cap report the cap.
const CAP_RANK1: f64 = 2.0;
const CAP_LF_STEP: f64 = 1.7;
const CAP_RANK_RANGE: f64 = 2.0;

/// Best-of-`REPS` nanoseconds per op for `f` over a `QUERIES`-op batch.
fn best_ns_per_op(mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        black_box(f());
        let ns = t.elapsed().as_nanos() as f64 / QUERIES as f64;
        best = best.min(ns);
    }
    best
}

struct KernelReport {
    name: &'static str,
    baseline_ns: f64,
    optimized_ns: f64,
    cap: f64,
}

impl KernelReport {
    fn measured(&self) -> f64 {
        self.baseline_ns / self.optimized_ns.max(1e-9)
    }

    fn gated(&self) -> f64 {
        self.measured().min(self.cap)
    }

    fn json(&self) -> String {
        format!(
            "    {{ \"workload\": \"{}\", \"baseline_ns_per_op\": {:.1}, \"optimized_ns_per_op\": {:.1}, \"measured_speedup\": {:.2}, \"kernel_speedup\": {:.2} }}",
            self.name,
            self.baseline_ns,
            self.optimized_ns,
            self.measured(),
            self.gated(),
        )
    }
}

/// Times one kernel pair, interleaving warmups and keeping each side's best.
fn run_pair(
    name: &'static str,
    cap: f64,
    mut optimized: impl FnMut() -> usize,
    mut baseline: impl FnMut() -> usize,
) -> KernelReport {
    // One warmup round each, discarded.
    black_box(optimized());
    black_box(baseline());
    let optimized_ns = best_ns_per_op(&mut optimized);
    let baseline_ns = best_ns_per_op(&mut baseline);
    let r = KernelReport {
        name,
        baseline_ns,
        optimized_ns,
        cap,
    };
    println!(
        "{:<18} baseline {:>7.1} ns/op   optimized {:>7.1} ns/op   speedup {:>5.2}x (gated {:.2})",
        r.name,
        r.baseline_ns,
        r.optimized_ns,
        r.measured(),
        r.gated(),
    );
    r
}

fn main() {
    println!("\n=== succinct kernels: optimized vs pre-change baselines (same run) ===");
    let mut rng = StdRng::seed_from_u64(41);

    // rank1 on a 1 Mi-bit vector.
    let bits: Vec<bool> = (0..BITS).map(|_| rng.gen_bool(0.4)).collect();
    let mut b = BitVecBuilder::with_capacity(bits.len());
    for &bit in &bits {
        b.push(bit);
    }
    let bv_new = b.finish();
    let bv_old = ScanRankBitVec::from_bits(&bits);
    let positions: Vec<usize> = (0..QUERIES).map(|_| rng.gen_range(0..=BITS)).collect();
    let rank1 = run_pair(
        "kernel_rank1",
        CAP_RANK1,
        || positions.iter().map(|&i| bv_new.rank1(i)).sum::<usize>(),
        || positions.iter().map(|&i| bv_old.rank1(i)).sum::<usize>(),
    );

    // Wavelet kernels on a 256 Ki-symbol matrix.
    let symbols: Vec<u8> = (0..SYMS).map(|_| rng.gen_range(1..=255u8)).collect();
    let wm_new = WaveletMatrix::build(&symbols);
    let wm_old = ScanWavelet::build(&symbols);
    let rows: Vec<usize> = (0..QUERIES).map(|_| rng.gen_range(0..SYMS)).collect();
    let lf = run_pair(
        "kernel_lf_step",
        CAP_LF_STEP,
        || rows.iter().map(|&i| wm_new.access_and_rank(i).1).sum(),
        || rows.iter().map(|&i| wm_old.access_and_rank(i).1).sum(),
    );

    let ranges: Vec<(u8, usize, usize)> = (0..QUERIES)
        .map(|_| {
            let a = rng.gen_range(0..SYMS);
            let b = rng.gen_range(a..=SYMS);
            (rng.gen(), a, b)
        })
        .collect();
    let rr = run_pair(
        "kernel_rank_range",
        CAP_RANK_RANGE,
        || {
            ranges
                .iter()
                .map(|&(s, lo, hi)| wm_new.rank_range(s, lo, hi).1)
                .sum()
        },
        || {
            ranges
                .iter()
                .map(|&(s, lo, hi)| wm_old.rank_pair(s, lo, hi).1)
                .sum()
        },
    );

    let reports = [rank1, lf, rr];
    let min_gated = reports
        .iter()
        .map(KernelReport::gated)
        .fold(f64::INFINITY, f64::min);
    let body = format!(
        "{{\n  \"queries_per_batch\": {QUERIES},\n  \"workloads\": [\n{}\n  ],\n  \"min_kernel_speedup\": {min_gated:.2}\n}}\n",
        reports
            .iter()
            .map(KernelReport::json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write("BENCH_kernels.json", &body).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json");
    println!("min gated kernel speedup {min_gated:.2} (caps: rank1 {CAP_RANK1}, lf_step {CAP_LF_STEP}, rank_range {CAP_RANK_RANGE})");
}
