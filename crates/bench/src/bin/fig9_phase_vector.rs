//! Figure 9: vector-search phase diagrams at three recall@10 targets.
//!
//! The paper tunes `nprobe`/`refine` to hit recall 0.87 / 0.92 / 0.97 and
//! shows the higher-recall (slower, costlier `cpq_r`) configurations barely
//! move the phase boundaries on the log-log plot — "building a Rottnest
//! index is most likely still a good decision if recall target changes".

use rottnest::{Query, Rottnest};
use rottnest_bench::{sim_seconds, vector_scenario, write_csv, TcoInputs, VEC_COL};
use rottnest_ivfpq::{recall_at_k, SearchParams};
use rottnest_tco::{prices, PhaseDiagram};

fn main() {
    let (s, queries) = vector_scenario(6, 4_000, 32, 21);
    let table = s.table();
    let snapshot = table.snapshot().unwrap();
    let rot: Rottnest<'_> = s.rottnest();

    // Exact ground truth from the brute-force scanner.
    let bf = rottnest_baselines::BruteForce::new(&table, snapshot.clone());
    let truth: Vec<Vec<(String, u64)>> = queries
        .iter()
        .map(|q| {
            bf.scan_vector(VEC_COL, q, 10)
                .unwrap()
                .0
                .into_iter()
                .map(|m| (m.path, m.row))
                .collect()
        })
        .collect();
    let (_, brute_latency) = sim_seconds(&s.store, || {
        bf.scan_vector(VEC_COL, &queries[0], 10).unwrap();
    });

    // Effort ladder: (nprobe, refine) per recall target.
    let settings = [("low", 3, 24), ("mid", 6, 60), ("high", 16, 200)];
    let mut summary = String::from("setting,nprobe,refine,recall_at_10,latency_s,cpq_r\n");
    println!("\n=== Figure 9: vector phase diagrams by recall target ===");

    for (name, nprobe, refine) in settings {
        let params = SearchParams {
            k: 10,
            nprobe,
            refine,
        };
        let mut recall_sum = 0.0;
        let mut latency_sum = 0.0;
        for (q, t) in queries.iter().zip(&truth) {
            let (out, secs) = sim_seconds(&s.store, || {
                rot.search(
                    &table,
                    &snapshot,
                    VEC_COL,
                    &Query::VectorNn { query: q, params },
                )
                .unwrap()
            });
            let found: Vec<(String, u64)> =
                out.matches.into_iter().map(|m| (m.path, m.row)).collect();
            recall_sum += recall_at_k(&found, t);
            latency_sum += secs;
        }
        let recall = recall_sum / queries.len() as f64;
        // Paper-scale fan-out adjustment: the simulator batches all probed
        // lists and refine pages into single parallel round trips, which
        // hides the per-request fan-out cost a real object store charges at
        // billion-vector scale (the paper measures +35% latency from recall
        // 0.87 → 0.97). Charge 2 ms per probed list and 0.3 ms per refined
        // vector on top of the measured simulated latency.
        let fanout_s = 0.002 * nprobe as f64 + 0.0003 * refine as f64;
        let latency = latency_sum / queries.len() as f64 + fanout_s;

        let inputs = TcoInputs {
            rottnest_latency_s: latency,
            brute_latency_1w_s: brute_latency,
            scale: 1e9 / (6.0 * 4_000.0), // SIFT-1B
            data_bytes: s.data_bytes,
            index_bytes: s.index_bytes,
            build_seconds: s.index_build_seconds,
            dedicated_hourly: prices::R6G_XLARGE_HOURLY, // LanceDB nodes
        };
        let approaches = inputs.approaches();
        let diagram = PhaseDiagram::compute(&approaches);
        write_csv(&format!("fig9_vector_{name}.csv"), &diagram.to_csv());

        summary.push_str(&format!(
            "{name},{nprobe},{refine},{recall:.3},{latency:.3},{:.6}\n",
            approaches.rottnest.cost_per_query
        ));
        println!(
            "{name:<5} nprobe={nprobe:<3} refine={refine:<4} recall@10={recall:.3} \
             latency={latency:.2}s band@10mo={:.1} decades",
            diagram.rottnest_decades_at(10.0)
        );
    }
    write_csv("fig9_summary.csv", &summary);
}
