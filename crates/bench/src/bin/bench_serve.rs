//! Serving-under-overload benchmark: tail latency, shed rate, and
//! single-flight dedup rate of the admission policy at and past the
//! service's concurrency ceiling.
//!
//! Runs the deterministic virtual-time open-arrival simulator from
//! `rottnest-serve` (which shares `estimate_finish_ms` — the exact shed
//! policy of the threaded `QueryService`) over four workloads:
//!
//! * **serve_under** — 0.75x the QPS ceiling: nothing sheds, p999 equals
//!   one service time (the no-queueing control);
//! * **serve_2x** / **serve_10x** — open arrival at 2x / 10x the ceiling
//!   with a 100 ms deadline budget: bounded queueing plus deadline
//!   shedding keep the tail flat while the shed rate absorbs the excess;
//! * **serve_hotkey** — 10x the ceiling, every arrival the same hot
//!   query: single-flight dedup turns the stampede into one search per
//!   service interval, so nothing sheds at all.
//!
//! Every metric is a pure function of the simulator config — virtual
//! milliseconds and counts, never host wall clock — so the report is
//! byte-stable across machines and gated at ±15% by `bench_gate`.

use rottnest_serve::{simulate, SimConfig, SimReport};

/// Service shape: 4 slots at 20 ms/query → a 200 QPS ceiling.
const MAX_CONCURRENT: usize = 4;
const SERVICE_MS: u64 = 20;
const MAX_QUEUED: usize = 8;
const DURATION_MS: u64 = 10_000;

const fn ceiling_qps() -> u64 {
    (MAX_CONCURRENT as u64) * 1000 / SERVICE_MS
}

fn base(qps: u64) -> SimConfig {
    SimConfig {
        qps,
        duration_ms: DURATION_MS,
        service_ms: SERVICE_MS,
        max_concurrent: MAX_CONCURRENT,
        max_queued: MAX_QUEUED,
        deadline_budget_ms: None,
        hot_every: 0,
    }
}

fn main() {
    let ceiling = ceiling_qps();
    let workloads: Vec<(&str, SimConfig)> = vec![
        ("serve_under", base(ceiling * 3 / 4)),
        (
            "serve_2x",
            SimConfig {
                deadline_budget_ms: Some(100),
                ..base(ceiling * 2)
            },
        ),
        (
            "serve_10x",
            SimConfig {
                deadline_budget_ms: Some(100),
                ..base(ceiling * 10)
            },
        ),
        (
            "serve_hotkey",
            SimConfig {
                hot_every: 1,
                ..base(ceiling * 10)
            },
        ),
    ];

    println!("\n=== serving under overload (ceiling {ceiling} QPS: {MAX_CONCURRENT} slots x {SERVICE_MS} ms) ===");
    println!(
        "{:<13} {:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "workload", "qps", "arrivals", "complete", "p50 ms", "p99 ms", "p999 ms", "shed", "dedup"
    );

    let mut blocks = String::new();
    let mut results: Vec<(&str, SimReport)> = Vec::new();
    for (name, cfg) in &workloads {
        let r = simulate(*cfg);
        println!(
            "{name:<13} {:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9.1}% {:>9.1}%",
            cfg.qps,
            r.arrivals,
            r.completed,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.shed_rate * 100.0,
            r.dedup_hit_rate * 100.0,
        );
        blocks.push_str(&format!(
            "    {{ \"workload\": \"{name}\", \"qps\": {}, \"arrivals\": {}, \"completed\": {}, \
             \"p50_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \
             \"shed_rate\": {:.3}, \"dedup_hit_rate\": {:.3} }},\n",
            cfg.qps,
            r.arrivals,
            r.completed,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.shed_rate,
            r.dedup_hit_rate,
        ));
        results.push((name, r));
    }
    blocks.pop();
    blocks.pop(); // trailing ",\n"

    let max_shed = results
        .iter()
        .map(|(_, r)| r.shed_rate)
        .fold(0.0f64, f64::max);
    let max_p999 = results.iter().map(|(_, r)| r.p999_ms).max().unwrap_or(0);
    let hot_dedup = results
        .iter()
        .find(|(n, _)| *n == "serve_hotkey")
        .map(|(_, r)| r.dedup_hit_rate)
        .unwrap_or(0.0);

    let body = format!(
        "{{\n  \"ceiling_qps\": {ceiling},\n  \"max_concurrent\": {MAX_CONCURRENT},\n  \
         \"service_ms\": {SERVICE_MS},\n  \"max_queued\": {MAX_QUEUED},\n  \"workloads\": [\n{blocks}\n  ],\n  \
         \"max_shed_rate\": {max_shed:.3},\n  \"max_p999_ms\": {max_p999},\n  \
         \"hot_dedup_hit_rate\": {hot_dedup:.3}\n}}\n"
    );
    std::fs::write("BENCH_serve.json", &body).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
