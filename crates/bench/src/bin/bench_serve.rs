//! Serving-under-overload benchmark: tail latency, shed rate, fairness
//! share, hedge-win rate, and single-flight dedup rate of the admission
//! policy at and past the service's concurrency ceiling.
//!
//! Runs the deterministic virtual-time open-arrival simulator from
//! `rottnest-serve` (which shares `estimate_finish_ms` and
//! `virtual_finish_tag` — the exact shed + WFQ dispatch policy of the
//! threaded `QueryService`) over eight workloads:
//!
//! * **serve_under** — 0.75x the QPS ceiling: nothing sheds, p999 equals
//!   one service time (the no-queueing control);
//! * **serve_2x** / **serve_10x** — open arrival at 2x / 10x the ceiling
//!   with a 100 ms deadline budget: bounded queueing plus deadline
//!   shedding keep the tail flat while the shed rate absorbs the excess;
//! * **serve_hotkey** — 10x the ceiling, every arrival the same hot
//!   query: single-flight dedup turns the stampede into one search per
//!   service interval, so nothing sheds at all;
//! * **serve_fair_2x** — 2x the ceiling with every 3rd arrival batch
//!   class at WFQ weights 4:1: batch must keep at least its weighted
//!   share of completions (`batch_share`, gated as a floor) while the
//!   interactive tail stays inside the queue-drain bound;
//! * **serve_hedge** — 0.75x the ceiling with a 60 ms budget and a 200 ms
//!   straggler every 97th query: hedged backup lanes rescue the
//!   stragglers (`hedge_win_rate`, gated as a floor) and keep p999 at the
//!   committed bound;
//! * **serve_pool_16x** — the shared executor pool: 256 admitted queries
//!   on 16 pool workers at 16x the thread-per-slot ceiling. Concurrency
//!   is an admission number, threads are the pool — throughput scales to
//!   the admission ceiling (`pool_qps`, gated as a floor) while the
//!   modeled thread count stays at the fixed pool size
//!   (`executor_threads`, gated as a ceiling) and p999 holds the
//!   queue-drain bound;
//! * **serve_outage** — 2x the ceiling with the index domain fully dark
//!   for three virtual seconds mid-run: the circuit breaker trips after
//!   five consecutive failures and the shared retry budget caps offered
//!   load (`retry_amplification`, gated as a ceiling ≤ 2.0), interactive
//!   queries keep flowing on the brute path (`brownout_qps`, gated as a
//!   floor) while batch sheds first, and one half-open probe per cooldown
//!   closes the breaker within a bounded window after the fault clears
//!   (`brownout_recovery_ms`, gated as a ceiling).
//!
//! Every metric is a pure function of the simulator config — virtual
//! milliseconds and counts, never host wall clock — so the report is
//! byte-stable across machines and gated at ±15% by `bench_gate`.

use rottnest_serve::{simulate, SimConfig, SimReport};

/// Service shape: 4 slots at 20 ms/query → a 200 QPS ceiling.
const MAX_CONCURRENT: usize = 4;
const SERVICE_MS: u64 = 20;
const MAX_QUEUED: usize = 8;
const DURATION_MS: u64 = 10_000;

const fn ceiling_qps() -> u64 {
    (MAX_CONCURRENT as u64) * 1000 / SERVICE_MS
}

fn base(qps: u64) -> SimConfig {
    SimConfig {
        qps,
        duration_ms: DURATION_MS,
        service_ms: SERVICE_MS,
        max_concurrent: MAX_CONCURRENT,
        max_queued: MAX_QUEUED,
        deadline_budget_ms: None,
        hot_every: 0,
        batch_every: 0,
        interactive_weight: 4,
        batch_weight: 1,
        slow_every: 0,
        slow_service_ms: 0,
        hedge_threshold_ms: 0,
        pool_workers: 0,
        fanout: 1,
        outage_start_ms: 0,
        outage_end_ms: 0,
        outage_breaker_fails: 0,
        outage_cooldown_ms: 0,
        outage_retry_budget: 0,
        brownout_service_ms: 0,
    }
}

/// Pool shape for `serve_pool_16x`: the admission ceiling sits 16x above
/// the worker count, as in the overload-soak's 256-on-16 storm.
const POOL_WORKERS: usize = 16;
const POOL_CONCURRENT: usize = 256;

fn main() {
    let ceiling = ceiling_qps();
    let workloads: Vec<(&str, SimConfig)> = vec![
        ("serve_under", base(ceiling * 3 / 4)),
        (
            "serve_2x",
            SimConfig {
                deadline_budget_ms: Some(100),
                ..base(ceiling * 2)
            },
        ),
        (
            "serve_10x",
            SimConfig {
                deadline_budget_ms: Some(100),
                ..base(ceiling * 10)
            },
        ),
        (
            "serve_hotkey",
            SimConfig {
                hot_every: 1,
                ..base(ceiling * 10)
            },
        ),
        (
            "serve_fair_2x",
            SimConfig {
                // The 60 ms budget equals the queue-drain bound, so the
                // deadline gate keeps the interactive tail at the same
                // committed p999 the classless workloads hold.
                deadline_budget_ms: Some(60),
                batch_every: 3,
                ..base(ceiling * 2)
            },
        ),
        (
            "serve_hedge",
            SimConfig {
                deadline_budget_ms: Some(60),
                slow_every: 97,
                slow_service_ms: 200,
                hedge_threshold_ms: 40,
                ..base(ceiling * 3 / 4)
            },
        ),
        (
            "serve_pool_16x",
            SimConfig {
                max_concurrent: POOL_CONCURRENT,
                max_queued: 64,
                deadline_budget_ms: Some(100),
                pool_workers: POOL_WORKERS,
                fanout: 8,
                ..base(ceiling * 16)
            },
        ),
        (
            "serve_outage",
            SimConfig {
                deadline_budget_ms: Some(100),
                batch_every: 3,
                outage_start_ms: 2_000,
                outage_end_ms: 5_000,
                outage_breaker_fails: 5,
                outage_cooldown_ms: 200,
                outage_retry_budget: 8,
                // The brute-scan path is about twice the indexed service.
                brownout_service_ms: SERVICE_MS * 2,
                ..base(ceiling * 2)
            },
        ),
    ];

    println!("\n=== serving under overload (ceiling {ceiling} QPS: {MAX_CONCURRENT} slots x {SERVICE_MS} ms) ===");
    println!(
        "{:<14} {:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7}",
        "workload",
        "qps",
        "arrivals",
        "complete",
        "p50 ms",
        "p99 ms",
        "p999 ms",
        "shed",
        "dedup",
        "batch",
        "hedge"
    );

    let mut blocks = String::new();
    let mut results: Vec<(&str, SimReport)> = Vec::new();
    for (name, cfg) in &workloads {
        let r = simulate(*cfg);
        println!(
            "{name:<14} {:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7.1}% {:>7.1}% {:>6.1}% {:>6.1}%",
            cfg.qps,
            r.arrivals,
            r.completed,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.shed_rate * 100.0,
            r.dedup_hit_rate * 100.0,
            r.batch_share * 100.0,
            r.hedge_win_rate * 100.0,
        );
        let mut block = format!(
            "    {{ \"workload\": \"{name}\", \"qps\": {}, \"arrivals\": {}, \"completed\": {}, \
             \"p50_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \
             \"shed_rate\": {:.3}, \"dedup_hit_rate\": {:.3}",
            cfg.qps,
            r.arrivals,
            r.completed,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.shed_rate,
            r.dedup_hit_rate,
        );
        // Class/hedge metrics only appear on the workloads that exercise
        // them — the gate skips metrics absent from a block.
        if cfg.batch_every != 0 {
            block.push_str(&format!(", \"batch_share\": {:.3}", r.batch_share));
        }
        if cfg.hedge_threshold_ms != 0 {
            block.push_str(&format!(
                ", \"hedged\": {}, \"hedge_wins\": {}, \"hedge_win_rate\": {:.3}",
                r.hedged, r.hedge_wins, r.hedge_win_rate
            ));
        }
        if cfg.pool_workers != 0 {
            block.push_str(&format!(
                ", \"pool_qps\": {:.3}, \"executor_threads\": {}",
                r.pool_qps, r.executor_threads
            ));
        }
        if cfg.outage_end_ms > cfg.outage_start_ms {
            println!(
                "{:>14} outage: amplification {:.2}x, recovery {} ms, brownout {:.1} qps",
                "", r.retry_amplification, r.brownout_recovery_ms, r.brownout_qps
            );
            block.push_str(&format!(
                ", \"retry_amplification\": {:.3}, \"brownout_recovery_ms\": {}, \
                 \"brownout_qps\": {:.3}",
                r.retry_amplification, r.brownout_recovery_ms, r.brownout_qps
            ));
        }
        block.push_str(" },\n");
        blocks.push_str(&block);
        results.push((name, r));
    }
    blocks.pop();
    blocks.pop(); // trailing ",\n"

    let max_shed = results
        .iter()
        .map(|(_, r)| r.shed_rate)
        .fold(0.0f64, f64::max);
    let max_p999 = results.iter().map(|(_, r)| r.p999_ms).max().unwrap_or(0);
    let hot_dedup = results
        .iter()
        .find(|(n, _)| *n == "serve_hotkey")
        .map(|(_, r)| r.dedup_hit_rate)
        .unwrap_or(0.0);
    let min_batch_share = results
        .iter()
        .filter(|(_, r)| r.batch_share > 0.0)
        .map(|(_, r)| r.batch_share)
        .fold(f64::INFINITY, f64::min);
    let min_batch_share = if min_batch_share.is_finite() {
        min_batch_share
    } else {
        0.0
    };
    let min_hedge_win_rate = results
        .iter()
        .filter(|(_, r)| r.hedged > 0)
        .map(|(_, r)| r.hedge_win_rate)
        .fold(f64::INFINITY, f64::min);
    let min_hedge_win_rate = if min_hedge_win_rate.is_finite() {
        min_hedge_win_rate
    } else {
        0.0
    };

    let body = format!(
        "{{\n  \"ceiling_qps\": {ceiling},\n  \"max_concurrent\": {MAX_CONCURRENT},\n  \
         \"service_ms\": {SERVICE_MS},\n  \"max_queued\": {MAX_QUEUED},\n  \"workloads\": [\n{blocks}\n  ],\n  \
         \"max_shed_rate\": {max_shed:.3},\n  \"max_p999_ms\": {max_p999},\n  \
         \"hot_dedup_hit_rate\": {hot_dedup:.3},\n  \
         \"min_batch_share\": {min_batch_share:.3},\n  \
         \"min_hedge_win_rate\": {min_hedge_win_rate:.3}\n}}\n"
    );
    std::fs::write("BENCH_serve.json", &body).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
