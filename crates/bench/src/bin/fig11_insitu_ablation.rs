//! Figure 11: ablations of the in-situ querying design (§VII-C) on the UUID
//! application's phase diagram:
//!
//! * **keep a copy of the data** in a custom format inside the index —
//!   multiplies `cpm_r` by carrying the dataset twice, shrinking the region
//!   where Rottnest beats brute force at long horizons;
//! * **no optimized Parquet reader** — every in-situ probe downloads a whole
//!   column chunk instead of one ~300 KiB page, inflating `cpq_r` by orders
//!   of magnitude and pushing Rottnest below the copy-data approach.

use rottnest::Query;
use rottnest_bench::{uuid_scenario, write_csv, TcoInputs, UUID_COL};
use rottnest_tco::{cpm_storage, prices, PhaseDiagram};

fn main() {
    let (s, keys) = uuid_scenario(8, 20_000, 31);
    let queries: Vec<Query<'_>> = keys
        .iter()
        .step_by(keys.len() / 8)
        .map(|k| Query::UuidEq { key: k, k: 1 })
        .collect();
    let r_lat = s.rottnest_latency(UUID_COL, &queries);
    let b_lat = s.brute_latency(UUID_COL, &queries);
    let inputs = TcoInputs {
        rottnest_latency_s: r_lat,
        brute_latency_1w_s: b_lat,
        scale: 2e9 / keys.len() as f64,
        data_bytes: s.data_bytes,
        index_bytes: s.index_bytes,
        build_seconds: s.index_build_seconds,
        dedicated_hourly: prices::R6G_LARGE_SEARCH_HOURLY,
    };
    let actual = inputs.approaches();

    // Ablation 1: store a copy of the raw data in the index (custom-format
    // approach). Index storage grows by the dataset size.
    let mut copy_format = actual;
    copy_format.rottnest.cost_per_month =
        cpm_storage((s.data_bytes * 2 + s.index_bytes) as f64 * inputs.scale);
    copy_format.copy_data.cost_per_month = prices::dedicated_monthly(
        prices::R6G_LARGE_SEARCH_HOURLY,
        (s.index_bytes + s.data_bytes) as f64 * inputs.scale,
    );

    // Ablation 2: no page-granular reader — probes fetch whole column
    // chunks. Per probed page, the extra latency is chunk-GET − page-GET.
    // At paper scale a wide column's chunk is ~100 MB (Parquet writes
    // 128 MB row groups dominated by the indexed column, §V-A); the harness
    // files are far below the 1 MiB latency knee, so the penalty must be
    // evaluated at the paper's chunk size.
    let chunk_bytes: u64 = 100 << 20;
    let model = s.store.latency_model();
    let page_bytes = 300 << 10;
    let extra_us = model
        .get_us(chunk_bytes)
        .saturating_sub(model.get_us(page_bytes));
    let no_reader_latency = r_lat + extra_us as f64 / 1e6;
    let mut no_reader = actual;
    no_reader.rottnest.cost_per_query =
        rottnest_tco::cpq_from_latency(no_reader_latency, 1.0, prices::R6I_4XLARGE_HOURLY);

    println!("\n=== Figure 11: in-situ querying ablations (UUID search) ===");
    println!(
        "probe fetch: page ≈{}KiB vs full chunk ≈{:.1}MiB → latency {:.2}s vs {:.2}s",
        page_bytes >> 10,
        chunk_bytes as f64 / (1 << 20) as f64,
        r_lat,
        no_reader_latency
    );

    for (tag, approaches) in [
        ("fig11_actual", &actual),
        ("fig11_copy_format", &copy_format),
        ("fig11_no_custom_reader", &no_reader),
    ] {
        let d = PhaseDiagram::compute(approaches);
        write_csv(&format!("{tag}.csv"), &d.to_csv());
        let (c, b, r) = d.area_shares();
        println!(
            "{tag:<24} rottnest share {:.0}% (copy {:.0}%, brute {:.0}%), band@10mo {:.1} decades",
            r * 100.0,
            c * 100.0,
            b * 100.0,
            d.rottnest_decades_at(10.0)
        );
    }
    println!(
        "expected shape: copy_format shrinks the long-horizon band vs brute force; \
         no_custom_reader collapses Rottnest's advantage over copy-data"
    );
}
