//! Figure 8: horizontal scaling of (a,b) the brute-force cluster and (c,d)
//! Rottnest searchers, plus the §VII-A minimum-latency-threshold summary.
//!
//! Shape to reproduce: brute force scales near-linearly to 32 workers and
//! saturates at 64 (latency ↓, cost ↑); Rottnest is latency-bound (depth,
//! not width), so extra searchers barely help latency while cost grows
//! ~linearly. Rottnest on ONE worker still beats brute force on 64 by a
//! multiple.

use rottnest::Query;
use rottnest_bench::{
    text_scenario, uuid_scenario, vector_scenario, write_csv, TEXT_COL, UUID_COL, VEC_COL,
};
use rottnest_ivfpq::SearchParams;
use rottnest_tco::{prices, ClusterModel};

struct App {
    name: &'static str,
    rottnest_latency_s: f64,
    brute_1worker_s: f64,
    scale: f64,
    data_bytes: u64,
}

fn main() {
    let mut apps = Vec::new();

    {
        let (s, wl) = text_scenario(8, 300, 11);
        let patterns = [
            wl.midfreq_word().as_bytes().to_vec(),
            b"NEEDLE-0003-XYZZY".to_vec(),
        ];
        let queries: Vec<Query<'_>> = patterns
            .iter()
            .map(|p| Query::Substring { pattern: p, k: 10 })
            .collect();
        apps.push(App {
            name: "substring",
            rottnest_latency_s: s.rottnest_latency(TEXT_COL, &queries),
            brute_1worker_s: s.brute_latency(TEXT_COL, &queries),
            scale: 304e9 / s.data_bytes as f64,
            data_bytes: s.data_bytes,
        });
    }
    {
        let (s, keys) = uuid_scenario(8, 15_000, 12);
        let queries: Vec<Query<'_>> = keys
            .iter()
            .step_by(keys.len() / 6)
            .map(|k| Query::UuidEq { key: k, k: 1 })
            .collect();
        apps.push(App {
            name: "uuid",
            rottnest_latency_s: s.rottnest_latency(UUID_COL, &queries),
            brute_1worker_s: s.brute_latency(UUID_COL, &queries),
            scale: 2e9 / (8.0 * 15_000.0),
            data_bytes: s.data_bytes,
        });
    }
    {
        let (s, qs) = vector_scenario(6, 3_000, 32, 13);
        let queries: Vec<Query<'_>> = qs
            .iter()
            .take(6)
            .map(|q| Query::VectorNn {
                query: q,
                params: SearchParams {
                    k: 10,
                    nprobe: 8,
                    refine: 64,
                },
            })
            .collect();
        apps.push(App {
            name: "vector",
            rottnest_latency_s: s.rottnest_latency(VEC_COL, &queries),
            brute_1worker_s: s.brute_latency(VEC_COL, &queries),
            scale: 1e9 / (6.0 * 3_000.0),
            data_bytes: s.data_bytes,
        });
    }

    let workers = [1u32, 2, 4, 8, 16, 32, 64];
    let mut csv = String::from("app,approach,workers,latency_s,cost_per_query\n");
    println!("\n=== Figure 8: scaling ===");
    for app in &apps {
        // Scale only the transfer component to paper size (fixed first-byte
        // latencies amortize); 400 MB/s effective scan bandwidth per worker.
        let extra_bytes = app.data_bytes as f64 * (app.scale - 1.0);
        let scan_1w = app.brute_1worker_s + extra_bytes.max(0.0) / 400e6;
        let brute = ClusterModel {
            spinup_seconds: 2.0,
            serial_seconds: 0.5,
            scan_seconds_1worker: scan_1w,
            straggler_coeff: 0.08,
            hourly_rate: prices::R6I_4XLARGE_HOURLY,
        };
        for &w in &workers {
            csv.push_str(&format!(
                "{},brute_force,{w},{:.3},{:.6}\n",
                app.name,
                brute.latency(w),
                brute.cost_per_query(w)
            ));
        }
        // Rottnest is depth-bound: more searchers shard the (already
        // parallel-width) index files but the dependent-request chain stays;
        // model a small 5% improvement per doubling, cost ∝ workers.
        for &w in &workers {
            let lat = app.rottnest_latency_s * (1.0 - 0.05 * f64::from(w).log2()).max(0.7);
            let cost = f64::from(w) * prices::R6I_4XLARGE_HOURLY / 3600.0 * lat;
            csv.push_str(&format!("{},rottnest,{w},{lat:.3},{cost:.6}\n", app.name));
        }

        let b64 = brute.latency(64);
        let r1 = app.rottnest_latency_s;
        println!(
            "{:<10} rottnest(1w) {:>6.2}s | brute(64w) {:>7.2}s | advantage {:>4.1}x | brute(8w) {:>8.1}s",
            app.name,
            r1,
            b64,
            b64 / r1,
            brute.latency(8),
        );
    }
    write_csv("fig8_scaling.csv", &csv);
    println!("\nminimum latency thresholds (paper: 4.6s substring / 1.7s uuid / 2.3s vector):");
    for app in &apps {
        println!(
            "  {:<10} ≈ {:.1}s (rottnest, one worker)",
            app.name, app.rottnest_latency_s
        );
    }
}
