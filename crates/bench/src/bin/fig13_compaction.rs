//! Figure 13: search latency on uncompacted vs compacted index files as the
//! number of index files grows (substring and UUID search).
//!
//! Shape to reproduce: with one index file per ingest batch, search latency
//! grows with the file count (every index is opened and queried — more
//! dependent request chains, plus LIST/metadata pressure); after compaction
//! the latency is flat regardless of how much data was ingested (§VII-D2:
//! "Post compaction, the Rottnest search latency is effectively constant
//! irrespective of the dataset size").

use rottnest::{IndexKind, Query, Rottnest};
use rottnest_bench::{harness_config, sim_seconds, write_csv, TEXT_COL, UUID_COL};
use rottnest_format::WriterOptions;
use rottnest_lake::{Table, TableConfig};
use rottnest_object_store::MemoryStore;
use rottnest_workloads::{TextWorkload, UuidWorkload};

fn table_config() -> TableConfig {
    TableConfig {
        writer: WriterOptions {
            page_raw_bytes: 16 << 10,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn main() {
    let mut csv = String::from("app,index_files,compacted,latency_s\n");
    println!("\n=== Figure 13: compaction vs search latency ===");

    // --- UUID search (paper: 25× compaction factor) -----------------------
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "app", "index files", "uncompacted", "compacted"
    );
    for &n_files in &[4usize, 8, 16, 32] {
        let store = MemoryStore::new();
        let mut wl = UuidWorkload::new(7, 16);
        let schema = rottnest_workloads::uuid_batch(UUID_COL, &[])
            .schema()
            .clone();
        let table = Table::create(store.as_ref(), "lake", &schema, table_config()).unwrap();
        let rot = Rottnest::new(store.as_ref(), "idx", harness_config());
        let mut probe_keys = Vec::new();
        for _ in 0..n_files {
            let keys = wl.keys(4_000);
            probe_keys.push(keys[17].clone());
            table
                .append(&rottnest_workloads::uuid_batch(UUID_COL, &keys))
                .unwrap();
            rot.index(&table, IndexKind::Uuid { key_len: 16 }, UUID_COL)
                .unwrap()
                .unwrap();
        }
        let snapshot = table.snapshot().unwrap();
        let measure = |rot: &Rottnest<'_>| {
            let mut total = 0.0;
            for key in &probe_keys {
                let (_, secs) = sim_seconds(&store, || {
                    rot.search(&table, &snapshot, UUID_COL, &Query::UuidEq { key, k: 1 })
                        .unwrap()
                });
                total += secs;
            }
            total / probe_keys.len() as f64
        };
        let uncompacted = measure(&rot);
        rot.compact(IndexKind::Uuid { key_len: 16 }, UUID_COL)
            .unwrap();
        let compacted = measure(&rot);
        csv.push_str(&format!("uuid,{n_files},false,{uncompacted:.4}\n"));
        csv.push_str(&format!("uuid,{n_files},true,{compacted:.4}\n"));
        println!(
            "{:<10} {n_files:>12} {uncompacted:>13.2}s {compacted:>13.2}s",
            "uuid"
        );
    }

    // --- Substring search (paper: 100× compaction factor) ------------------
    for &n_files in &[2usize, 4, 8] {
        let store = MemoryStore::new();
        let mut wl = TextWorkload::new(9, 10_000, 50);
        let schema = rottnest_workloads::text_batch(TEXT_COL, &[])
            .schema()
            .clone();
        let table = Table::create(store.as_ref(), "lake", &schema, table_config()).unwrap();
        let rot = Rottnest::new(store.as_ref(), "idx", harness_config());
        for f in 0..n_files {
            let docs = wl.docs_with_needle(300, &format!("NEEDLE-{f:03}"), &[150]);
            table
                .append(&rottnest_workloads::text_batch(TEXT_COL, &docs))
                .unwrap();
            rot.index(&table, IndexKind::Substring, TEXT_COL)
                .unwrap()
                .unwrap();
        }
        let snapshot = table.snapshot().unwrap();
        let patterns: Vec<Vec<u8>> = (0..n_files)
            .map(|f| format!("NEEDLE-{f:03}").into_bytes())
            .collect();
        let measure = |rot: &Rottnest<'_>| {
            let mut total = 0.0;
            for p in &patterns {
                let (_, secs) = sim_seconds(&store, || {
                    rot.search(
                        &table,
                        &snapshot,
                        TEXT_COL,
                        &Query::Substring { pattern: p, k: 5 },
                    )
                    .unwrap()
                });
                total += secs;
            }
            total / patterns.len() as f64
        };
        let uncompacted = measure(&rot);
        rot.compact(IndexKind::Substring, TEXT_COL).unwrap();
        let compacted = measure(&rot);
        csv.push_str(&format!("substring,{n_files},false,{uncompacted:.4}\n"));
        csv.push_str(&format!("substring,{n_files},true,{compacted:.4}\n"));
        println!(
            "{:<10} {n_files:>12} {uncompacted:>13.2}s {compacted:>13.2}s",
            "substring"
        );
    }

    write_csv("fig13_compaction.csv", &csv);
    println!("\nexpected shape: uncompacted latency grows with file count; compacted stays flat");
}
