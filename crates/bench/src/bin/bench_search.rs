//! Request-cost benchmark for the search fast path: parallel executor +
//! process-wide component cache + range-coalescing batch reads.
//!
//! Runs the qps_ceiling workloads (uuid / substring / vector search on a
//! built index) plus the fig10-style page-read workload in two modes:
//!
//! * **baseline** — sequential executor (`parallelism = 1`), component,
//!   page, and metadata-plan caches cleared/disabled before every query
//!   (a fresh client per query), range coalescing disabled: every query
//!   pays the full cold request cost.
//! * **optimized** — `parallelism = 8`, caches warmed by one prior pass,
//!   page cache on, coalescing at the default 512 KiB gap.
//!
//! Two **warm_\*** workloads then model skewed repeated-probe traffic (the
//! same hot UUIDs / substrings queried again and again): both sides run
//! fully warm at `parallelism = 8`, differing only in whether the data-page
//! cache is on — isolating the page cache's GET savings on the traffic it
//! exists for.
//!
//! The headline `queries_per_sec` is the §VII-D3 request ceiling
//! (`5500 / GETs-per-query`, S3's per-prefix GET rate — the same metric
//! as the `qps_ceiling` bench): on a real object store, request cost is
//! what bounds search throughput. Wall-clock and simulated-latency QPS
//! are reported alongside. Writes the aggregate to `BENCH_search.json`.

use std::time::Instant;

use rottnest::{Query, Rottnest, RottnestConfig};
use rottnest_bench::{
    harness_config, text_scenario, uuid_scenario, vector_scenario, Scenario, TEXT_COL, UUID_COL,
    VEC_COL,
};
use rottnest_component::ComponentCache;
use rottnest_format::PageCache;
use rottnest_ivfpq::SearchParams;
use rottnest_object_store::{ObjectStore, DEFAULT_COALESCE_GAP};

struct ModeResult {
    ceiling_qps: f64,
    wall_qps: f64,
    sim_qps: f64,
    gets_per_query: f64,
    cache_hit_rate: f64,
    page_cache_hit_rate: f64,
    coalesced_gets: u64,
}

/// How one measured pass is configured.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Cold sequential: caches cleared/disabled per query, no coalescing.
    Cold,
    /// Warm parallel, page cache **off**: the PR-2 fast path.
    WarmNoPageCache,
    /// Warm parallel, page cache on: the full fast path.
    Warm,
}

fn run_mode(s: &Scenario, column: &str, queries: &[Query<'_>], mode: Mode) -> ModeResult {
    let store = &s.store;
    store.set_coalesce_gap(if mode == Mode::Cold {
        None
    } else {
        Some(DEFAULT_COALESCE_GAP)
    });
    let mut cfg: RottnestConfig = harness_config();
    cfg.search.parallelism = if mode == Mode::Cold { 1 } else { 8 };
    cfg.search.page_cache = mode == Mode::Warm;
    let client = || Rottnest::new(store.as_ref(), s.index_dir.clone(), cfg.clone());
    let rot = client();
    let table = s.table();
    let snap = table.snapshot().unwrap();

    if mode != Mode::Cold {
        // Warm the component, page, and metadata-plan caches with one
        // untimed pass (under the same page-cache setting as the
        // measurement).
        for q in queries {
            rot.search(&table, &snap, column, q).unwrap();
        }
    }

    let clock = store.clock().expect("metered store");
    let before = store.stats();
    let sim_us_before = clock.now_micros();
    let wall = Instant::now();
    for q in queries {
        if mode == Mode::Cold {
            // Cold baseline: every query starts with empty caches — the
            // component and page caches are cleared (the page cache is
            // also disabled in config) and a fresh client discards the
            // per-client metadata-plan cache.
            ComponentCache::global().clear();
            PageCache::global().clear();
            client().search(&table, &snap, column, q).unwrap();
        } else {
            rot.search(&table, &snap, column, q).unwrap();
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();
    let sim_s = (clock.now_micros() - sim_us_before) as f64 / 1e6;
    let delta = store.stats().since(&before);

    let n = queries.len() as f64;
    let gets_per_query = delta.gets as f64 / n;
    let lookups = delta.cache_hits + delta.cache_misses;
    let page_lookups = delta.page_cache_hits + delta.page_cache_misses;
    ModeResult {
        // §VII-D3: S3's 5500 GET/s per-prefix limit caps throughput at
        // 5500 / GETs-per-query (same derivation as the qps_ceiling bench).
        ceiling_qps: 5500.0 / gets_per_query.max(1.0),
        wall_qps: n / wall_s.max(1e-9),
        sim_qps: n / sim_s.max(1e-9),
        gets_per_query,
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            delta.cache_hits as f64 / lookups as f64
        },
        page_cache_hit_rate: if page_lookups == 0 {
            0.0
        } else {
            delta.page_cache_hits as f64 / page_lookups as f64
        },
        coalesced_gets: delta.coalesced_gets,
    }
}

struct WorkloadReport {
    name: &'static str,
    baseline: ModeResult,
    optimized: ModeResult,
}

impl WorkloadReport {
    fn qps_speedup(&self) -> f64 {
        self.optimized.ceiling_qps / self.baseline.ceiling_qps.max(1e-9)
    }

    fn gets_ratio(&self) -> f64 {
        self.optimized.gets_per_query / self.baseline.gets_per_query.max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            "    {{\n      \"workload\": \"{}\",\n      \"baseline\": {},\n      \"optimized\": {},\n      \"qps_speedup\": {:.2},\n      \"gets_per_query_ratio\": {:.3}\n    }}",
            self.name,
            mode_json(&self.baseline),
            mode_json(&self.optimized),
            self.qps_speedup(),
            self.gets_ratio(),
        )
    }
}

fn mode_json(m: &ModeResult) -> String {
    format!(
        "{{ \"queries_per_sec\": {:.1}, \"sim_queries_per_sec\": {:.2}, \"wall_queries_per_sec\": {:.1}, \"gets_per_query\": {:.2}, \"cache_hit_rate\": {:.3}, \"page_cache_hit_rate\": {:.3}, \"coalesced_gets\": {} }}",
        m.ceiling_qps,
        m.sim_qps,
        m.wall_qps,
        m.gets_per_query,
        m.cache_hit_rate,
        m.page_cache_hit_rate,
        m.coalesced_gets
    )
}

fn report(name: &'static str, baseline: ModeResult, optimized: ModeResult) -> WorkloadReport {
    let r = WorkloadReport {
        name,
        baseline,
        optimized,
    };
    println!(
        "{name:<12} qps {:>9.1} -> {:>9.1} ({:>5.1}x)   GETs/query {:>6.2} -> {:>5.2} ({:.2}x)   hit {:.0}%/{:.0}%",
        r.baseline.ceiling_qps,
        r.optimized.ceiling_qps,
        r.qps_speedup(),
        r.baseline.gets_per_query,
        r.optimized.gets_per_query,
        r.gets_ratio(),
        r.optimized.cache_hit_rate * 100.0,
        r.optimized.page_cache_hit_rate * 100.0,
    );
    r
}

/// Cold sequential vs fully warm parallel — the PR-2 headline comparison.
fn run_workload(
    name: &'static str,
    s: &Scenario,
    column: &str,
    queries: &[Query<'_>],
) -> WorkloadReport {
    report(
        name,
        run_mode(s, column, queries, Mode::Cold),
        run_mode(s, column, queries, Mode::Warm),
    )
}

/// Warm-vs-warm, differing only in the page cache — the skewed
/// repeated-probe traffic the data-page cache exists for.
fn run_warm_workload(
    name: &'static str,
    s: &Scenario,
    column: &str,
    queries: &[Query<'_>],
) -> WorkloadReport {
    report(
        name,
        run_mode(s, column, queries, Mode::WarmNoPageCache),
        run_mode(s, column, queries, Mode::Warm),
    )
}

fn main() {
    println!("\n=== search fast path: cold sequential baseline vs warm parallel ===");

    let mut reports = Vec::new();
    let mut warm_reports = Vec::new();

    {
        let (s, keys) = uuid_scenario(8, 10_000, 51);
        let n = 8;
        let queries: Vec<Query<'_>> = keys
            .iter()
            .step_by(keys.len() / n)
            .take(n)
            .map(|k| Query::UuidEq { key: k, k: 1 })
            .collect();
        reports.push(run_workload("uuid", &s, UUID_COL, &queries));

        // Skewed repeated-probe traffic: 3 hot keys, queried over and over.
        let hot: Vec<Query<'_>> = keys
            .iter()
            .step_by(keys.len() / 3)
            .take(3)
            .cycle()
            .take(24)
            .map(|k| Query::UuidEq { key: k, k: 1 })
            .collect();
        warm_reports.push(run_warm_workload("warm_uuid", &s, UUID_COL, &hot));
    }
    {
        let (s, wl) = text_scenario(6, 200, 52);
        let mid = wl.midfreq_word().as_bytes().to_vec();
        let queries: Vec<Query<'_>> = vec![
            Query::Substring {
                pattern: &mid,
                k: 10,
            },
            Query::Substring {
                pattern: b"NEEDLE-0002-XYZZY",
                k: 10,
            },
            Query::Substring {
                pattern: b"NEEDLE-0004-XYZZY",
                k: 10,
            },
        ];
        reports.push(run_workload("substring", &s, TEXT_COL, &queries));

        // The same hot patterns cycled: repeated-probe substring traffic.
        let hot: Vec<Query<'_>> = queries.iter().cycle().take(12).cloned().collect();
        warm_reports.push(run_warm_workload("warm_substr", &s, TEXT_COL, &hot));
    }
    {
        // fig10's point is page-granular reads: vector refine fetches many
        // scattered pages per query, the coalescing-heavy case.
        let (s, qs) = vector_scenario(6, 2_000, 32, 53);
        let queries: Vec<Query<'_>> = qs
            .iter()
            .take(6)
            .map(|q| Query::VectorNn {
                query: q,
                params: SearchParams {
                    k: 10,
                    nprobe: 8,
                    refine: 64,
                },
            })
            .collect();
        reports.push(run_workload("vector", &s, VEC_COL, &queries));
    }

    // Cold-vs-warm aggregates come from the cold trio only: the warm_*
    // workloads sit at the `max(1.0)` floor of the request-ceiling formula
    // and would collapse the speedup aggregate to ~1 despite the GET cut.
    let worst_speedup = reports
        .iter()
        .map(WorkloadReport::qps_speedup)
        .fold(f64::INFINITY, f64::min);
    let worst_gets = reports
        .iter()
        .map(WorkloadReport::gets_ratio)
        .fold(0.0f64, f64::max);
    // The page cache's own aggregate: worst GETs/query ratio across the
    // warm repeated-probe workloads (page cache on vs off, both warm).
    let worst_warm_gets = warm_reports
        .iter()
        .map(WorkloadReport::gets_ratio)
        .fold(0.0f64, f64::max);

    reports.extend(warm_reports);
    let body = format!(
        "{{\n  \"parallelism\": 8,\n  \"coalesce_gap_bytes\": {DEFAULT_COALESCE_GAP},\n  \"workloads\": [\n{}\n  ],\n  \"min_qps_speedup\": {worst_speedup:.2},\n  \"max_gets_per_query_ratio\": {worst_gets:.3},\n  \"max_warm_gets_per_query_ratio\": {worst_warm_gets:.3}\n}}\n",
        reports
            .iter()
            .map(WorkloadReport::json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write("BENCH_search.json", &body).expect("write BENCH_search.json");
    println!("\nwrote BENCH_search.json");
    println!(
        "min qps speedup {worst_speedup:.2}x (target >= 4x), max GETs/query ratio {worst_gets:.3} (target <= 0.5)"
    );
    println!(
        "warm repeated-probe GETs/query ratio {worst_warm_gets:.3} (target <= 0.5: the page cache must at least halve probe GETs)"
    );
}
