//! Request-cost benchmark for the search fast path: parallel executor +
//! process-wide component cache + range-coalescing batch reads.
//!
//! Runs the qps_ceiling workloads (uuid / substring / vector search on a
//! built index) plus the fig10-style page-read workload in two modes:
//!
//! * **baseline** — sequential executor (`parallelism = 1`), component
//!   and metadata-plan caches cleared before every query (a fresh client
//!   per query), range coalescing disabled: every query pays the full
//!   cold request cost.
//! * **optimized** — `parallelism = 8`, caches warmed by one prior pass,
//!   coalescing at the default 512 KiB gap.
//!
//! The headline `queries_per_sec` is the §VII-D3 request ceiling
//! (`5500 / GETs-per-query`, S3's per-prefix GET rate — the same metric
//! as the `qps_ceiling` bench): on a real object store, request cost is
//! what bounds search throughput. Wall-clock and simulated-latency QPS
//! are reported alongside. Writes the aggregate to `BENCH_search.json`.

use std::time::Instant;

use rottnest::{Query, Rottnest, RottnestConfig};
use rottnest_bench::{
    harness_config, text_scenario, uuid_scenario, vector_scenario, Scenario, TEXT_COL, UUID_COL,
    VEC_COL,
};
use rottnest_component::ComponentCache;
use rottnest_ivfpq::SearchParams;
use rottnest_object_store::{ObjectStore, DEFAULT_COALESCE_GAP};

struct ModeResult {
    ceiling_qps: f64,
    wall_qps: f64,
    sim_qps: f64,
    gets_per_query: f64,
    cache_hit_rate: f64,
    coalesced_gets: u64,
}

fn run_mode(s: &Scenario, column: &str, queries: &[Query<'_>], optimized: bool) -> ModeResult {
    let store = &s.store;
    store.set_coalesce_gap(if optimized {
        Some(DEFAULT_COALESCE_GAP)
    } else {
        None
    });
    let mut cfg: RottnestConfig = harness_config();
    cfg.search.parallelism = if optimized { 8 } else { 1 };
    let client = || Rottnest::new(store.as_ref(), s.index_dir.clone(), cfg.clone());
    let rot = client();
    let table = s.table();
    let snap = table.snapshot().unwrap();

    if optimized {
        // Warm the component and metadata-plan caches with one untimed pass.
        for q in queries {
            rot.search(&table, &snap, column, q).unwrap();
        }
    }

    let clock = store.clock().expect("metered store");
    let before = store.stats();
    let sim_us_before = clock.now_micros();
    let wall = Instant::now();
    for q in queries {
        if optimized {
            rot.search(&table, &snap, column, q).unwrap();
        } else {
            // Cold baseline: every query starts with empty caches — the
            // component cache is cleared and a fresh client discards the
            // per-client metadata-plan cache.
            ComponentCache::global().clear();
            client().search(&table, &snap, column, q).unwrap();
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();
    let sim_s = (clock.now_micros() - sim_us_before) as f64 / 1e6;
    let delta = store.stats().since(&before);

    let n = queries.len() as f64;
    let gets_per_query = delta.gets as f64 / n;
    let lookups = delta.cache_hits + delta.cache_misses;
    ModeResult {
        // §VII-D3: S3's 5500 GET/s per-prefix limit caps throughput at
        // 5500 / GETs-per-query (same derivation as the qps_ceiling bench).
        ceiling_qps: 5500.0 / gets_per_query.max(1.0),
        wall_qps: n / wall_s.max(1e-9),
        sim_qps: n / sim_s.max(1e-9),
        gets_per_query,
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            delta.cache_hits as f64 / lookups as f64
        },
        coalesced_gets: delta.coalesced_gets,
    }
}

struct WorkloadReport {
    name: &'static str,
    baseline: ModeResult,
    optimized: ModeResult,
}

impl WorkloadReport {
    fn qps_speedup(&self) -> f64 {
        self.optimized.ceiling_qps / self.baseline.ceiling_qps.max(1e-9)
    }

    fn gets_ratio(&self) -> f64 {
        self.optimized.gets_per_query / self.baseline.gets_per_query.max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            "    {{\n      \"workload\": \"{}\",\n      \"baseline\": {},\n      \"optimized\": {},\n      \"qps_speedup\": {:.2},\n      \"gets_per_query_ratio\": {:.3}\n    }}",
            self.name,
            mode_json(&self.baseline),
            mode_json(&self.optimized),
            self.qps_speedup(),
            self.gets_ratio(),
        )
    }
}

fn mode_json(m: &ModeResult) -> String {
    format!(
        "{{ \"queries_per_sec\": {:.1}, \"sim_queries_per_sec\": {:.2}, \"wall_queries_per_sec\": {:.1}, \"gets_per_query\": {:.2}, \"cache_hit_rate\": {:.3}, \"coalesced_gets\": {} }}",
        m.ceiling_qps, m.sim_qps, m.wall_qps, m.gets_per_query, m.cache_hit_rate, m.coalesced_gets
    )
}

fn run_workload(
    name: &'static str,
    s: &Scenario,
    column: &str,
    queries: &[Query<'_>],
) -> WorkloadReport {
    let baseline = run_mode(s, column, queries, false);
    let optimized = run_mode(s, column, queries, true);
    let r = WorkloadReport {
        name,
        baseline,
        optimized,
    };
    println!(
        "{name:<10} qps {:>9.1} -> {:>9.1} ({:>5.1}x)   GETs/query {:>6.1} -> {:>5.1} ({:.2}x)   hit rate {:.0}%",
        r.baseline.ceiling_qps,
        r.optimized.ceiling_qps,
        r.qps_speedup(),
        r.baseline.gets_per_query,
        r.optimized.gets_per_query,
        r.gets_ratio(),
        r.optimized.cache_hit_rate * 100.0,
    );
    r
}

fn main() {
    println!("\n=== search fast path: cold sequential baseline vs warm parallel ===");

    let mut reports = Vec::new();

    {
        let (s, keys) = uuid_scenario(8, 10_000, 51);
        let n = 8;
        let queries: Vec<Query<'_>> = keys
            .iter()
            .step_by(keys.len() / n)
            .take(n)
            .map(|k| Query::UuidEq { key: k, k: 1 })
            .collect();
        reports.push(run_workload("uuid", &s, UUID_COL, &queries));
    }
    {
        let (s, wl) = text_scenario(6, 200, 52);
        let mid = wl.midfreq_word().as_bytes().to_vec();
        let queries: Vec<Query<'_>> = vec![
            Query::Substring {
                pattern: &mid,
                k: 10,
            },
            Query::Substring {
                pattern: b"NEEDLE-0002-XYZZY",
                k: 10,
            },
            Query::Substring {
                pattern: b"NEEDLE-0004-XYZZY",
                k: 10,
            },
        ];
        reports.push(run_workload("substring", &s, TEXT_COL, &queries));
    }
    {
        // fig10's point is page-granular reads: vector refine fetches many
        // scattered pages per query, the coalescing-heavy case.
        let (s, qs) = vector_scenario(6, 2_000, 32, 53);
        let queries: Vec<Query<'_>> = qs
            .iter()
            .take(6)
            .map(|q| Query::VectorNn {
                query: q,
                params: SearchParams {
                    k: 10,
                    nprobe: 8,
                    refine: 64,
                },
            })
            .collect();
        reports.push(run_workload("vector", &s, VEC_COL, &queries));
    }

    let worst_speedup = reports
        .iter()
        .map(WorkloadReport::qps_speedup)
        .fold(f64::INFINITY, f64::min);
    let worst_gets = reports
        .iter()
        .map(WorkloadReport::gets_ratio)
        .fold(0.0f64, f64::max);

    let body = format!(
        "{{\n  \"parallelism\": 8,\n  \"coalesce_gap_bytes\": {DEFAULT_COALESCE_GAP},\n  \"workloads\": [\n{}\n  ],\n  \"min_qps_speedup\": {worst_speedup:.2},\n  \"max_gets_per_query_ratio\": {worst_gets:.3}\n}}\n",
        reports
            .iter()
            .map(WorkloadReport::json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write("BENCH_search.json", &body).expect("write BENCH_search.json");
    println!("\nwrote BENCH_search.json");
    println!(
        "min qps speedup {worst_speedup:.2}x (target >= 4x), max GETs/query ratio {worst_gets:.3} (target <= 0.5)"
    );
}
