//! Figure 12: sensitivity of the vector-search (mid-recall) phase diagram
//! to `cpq_r`, `ic_r` and `cpm_r − cpm_bf`, each scaled ×0.1 … ×10.
//!
//! Observations to reproduce (§VII-D1): cheaper queries help against
//! copy-data (not brute force); a smaller index does the opposite; cheaper
//! indexing moves the minimum worthwhile operating time but not the
//! asymptotic boundaries.

use rottnest::Query;
use rottnest_bench::{sim_seconds, vector_scenario, write_csv, TcoInputs, VEC_COL};
use rottnest_ivfpq::SearchParams;
use rottnest_tco::sensitivity::{sweep, RottnestParam};
use rottnest_tco::{prices, PhaseDiagram};

fn main() {
    let (s, queries) = vector_scenario(6, 3_000, 32, 41);
    let table = s.table();
    let snapshot = table.snapshot().unwrap();
    let rot = s.rottnest();

    let params = SearchParams {
        k: 10,
        nprobe: 6,
        refine: 60,
    }; // ~0.92 recall tier
    let mut latency = 0.0;
    for q in queries.iter().take(8) {
        let (_, secs) = sim_seconds(&s.store, || {
            rot.search(
                &table,
                &snapshot,
                VEC_COL,
                &Query::VectorNn { query: q, params },
            )
            .unwrap()
        });
        latency += secs;
    }
    latency /= 8.0;
    let brute = s.brute_latency(
        VEC_COL,
        &[Query::VectorNn {
            query: &queries[0],
            params,
        }],
    );

    let inputs = TcoInputs {
        rottnest_latency_s: latency,
        brute_latency_1w_s: brute,
        scale: 1e9 / (6.0 * 3_000.0),
        data_bytes: s.data_bytes,
        index_bytes: s.index_bytes,
        build_seconds: s.index_build_seconds,
        dedicated_hourly: prices::R6G_XLARGE_HOURLY,
    };
    let base = inputs.approaches();
    let factors = [0.1, 0.3, 1.0, 3.0, 10.0];

    let mut csv =
        String::from("param,factor,rottnest_share,min_winning_month,band_decades_at_10mo\n");
    println!("\n=== Figure 12: sensitivity (vector, mid recall) ===");
    for (param, name) in [
        (RottnestParam::Cpq, "cpq_r"),
        (RottnestParam::Ic, "ic_r"),
        (RottnestParam::CpmOverhead, "cpm_r_overhead"),
    ] {
        let points = sweep(&base, param, &factors);
        for p in &points {
            let scaled = rottnest_tco::scale_param(&base, param, p.factor);
            let d = PhaseDiagram::compute(&scaled);
            csv.push_str(&format!(
                "{name},{},{:.4},{},{:.2}\n",
                p.factor,
                p.rottnest_share,
                p.min_winning_month
                    .map_or("never".into(), |m| format!("{m:.3}")),
                d.rottnest_decades_at(10.0)
            ));
        }
        let lo = &points[0];
        let hi = &points[points.len() - 1];
        println!(
            "{name:<15} ×0.1 → share {:.0}%, first-win {:?} mo | ×10 → share {:.0}%, first-win {:?} mo",
            lo.rottnest_share * 100.0,
            lo.min_winning_month.map(|m| (m * 100.0).round() / 100.0),
            hi.rottnest_share * 100.0,
            hi.min_winning_month.map(|m| (m * 100.0).round() / 100.0),
        );
    }
    write_csv("fig12_sensitivity.csv", &csv);

    let holds = rottnest_tco::sensitivity::observations_hold(&base);
    println!("paper §VII-D1 observations hold on measured costs: {holds}");
}
