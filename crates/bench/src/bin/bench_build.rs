//! Ingest & index-build benchmark for the parallel pipeline.
//!
//! For each index kind (uuid / substring / vector) the same dataset is
//! ingested twice on fresh stores: once fully serial (writer and build
//! `parallelism = 1`) and once fanned out (`parallelism = 4`). Each run
//! measures the lake-append phase (parallel page compression) and the
//! index-build phase (pipelined download+decode feeding the kind-specific
//! builder, plus parallel builder internals) separately:
//!
//! * **simulated wall-clock seconds** — elapsed time on the store's
//!   [`SimClock`](rottnest_object_store::SimClock), the same clock every
//!   other benchmark and the TCO model
//!   report. The parallel pipeline's downloads overlap on it (the greedy
//!   lane schedule in `rottnest-object-store`), so this is where the
//!   fan-out shows up, deterministically and independently of the host's
//!   core count. The headline is the substring (FM) build speedup.
//! * **host CPU seconds** (`Instant`) — reported for context only; on a
//!   multi-core host the builder-internal fan-out (page compression, BWT
//!   chunking, PQ subspace training) shows up here, but the value is as
//!   noisy as any micro-benchmark and is never gated.
//! * **rows per simulated second** over the whole ingest (append + build);
//! * **GET / PUT counts** per phase — the pipeline replays every store
//!   request at the same position regardless of parallelism, so these
//!   must be *identical* between the two modes (`build_request_ratio`
//!   is the deterministic metric the bench gate holds flat, alongside the
//!   equally deterministic simulated speedups).
//!
//! Writes the aggregate to `BENCH_build.json`.

use std::time::Instant;

use rottnest::{IndexKind, Rottnest, RottnestConfig};
use rottnest_bench::{harness_config, TEXT_COL, UUID_COL, VEC_COL};
use rottnest_format::{RecordBatch, WriterOptions};
use rottnest_lake::{Table, TableConfig};
use rottnest_object_store::{MemoryStore, ObjectStore};
use rottnest_workloads::{TextWorkload, UuidWorkload, VectorWorkload};

/// Fan-out of the parallel mode (the serial mode is always 1).
const PARALLELISM: usize = 4;
const DIM: usize = 32;

fn table_config(parallelism: usize) -> TableConfig {
    TableConfig {
        writer: WriterOptions {
            page_raw_bytes: 16 << 10,
            row_group_rows: 1 << 20,
            parallelism,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn rot_config(parallelism: usize) -> RottnestConfig {
    let mut cfg = harness_config();
    cfg.build_parallelism = parallelism;
    cfg
}

/// One ingest kind: its name, column, index kind, and dataset.
struct Workload {
    name: &'static str,
    column: &'static str,
    kind: IndexKind,
    batches: Vec<RecordBatch>,
    rows: u64,
}

fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    {
        let mut wl = UuidWorkload::new(71, 16);
        let batches: Vec<RecordBatch> = (0..48)
            .map(|_| rottnest_workloads::uuid_batch(UUID_COL, &wl.keys(4_000)))
            .collect();
        out.push(Workload {
            name: "build_uuid",
            column: UUID_COL,
            kind: IndexKind::Uuid { key_len: 16 },
            rows: batches.iter().map(|b| b.num_rows() as u64).sum(),
            batches,
        });
    }
    {
        let mut wl = TextWorkload::new(72, 20_000, 60);
        let batches: Vec<RecordBatch> = (0..48)
            .map(|_| rottnest_workloads::text_batch(TEXT_COL, &wl.docs(200)))
            .collect();
        out.push(Workload {
            name: "build_substring",
            column: TEXT_COL,
            kind: IndexKind::Substring,
            rows: batches.iter().map(|b| b.num_rows() as u64).sum(),
            batches,
        });
    }
    {
        let mut wl = VectorWorkload::new(73, DIM, 24, 0.6);
        let batches: Vec<RecordBatch> = (0..24)
            .map(|_| rottnest_workloads::vector_batch(VEC_COL, DIM as u32, wl.vectors(2_000)))
            .collect();
        out.push(Workload {
            name: "build_vector",
            column: VEC_COL,
            kind: IndexKind::Vector { dim: DIM as u32 },
            rows: batches.iter().map(|b| b.num_rows() as u64).sum(),
            batches,
        });
    }
    out
}

/// One measured phase: simulated seconds, host CPU seconds, and the store
/// requests the phase issued.
struct Phase {
    sim_s: f64,
    cpu_s: f64,
    gets: u64,
    puts: u64,
}

struct IngestRun {
    append: Phase,
    build: Phase,
    rows_per_sec: f64,
}

fn run_ingest(w: &Workload, parallelism: usize) -> IngestRun {
    let store = MemoryStore::new();
    let table = Table::create(
        store.as_ref(),
        "lake",
        w.batches[0].schema(),
        table_config(parallelism),
    )
    .unwrap();
    let clock = store.clock().expect("memory store has a sim clock");

    let before = store.stats();
    let sim0 = clock.now_micros();
    let wall = Instant::now();
    for b in &w.batches {
        table.append(b).unwrap();
    }
    let append = Phase {
        sim_s: (clock.now_micros() - sim0) as f64 / 1e6,
        cpu_s: wall.elapsed().as_secs_f64(),
        gets: store.stats().since(&before).gets,
        puts: store.stats().since(&before).puts,
    };

    let rot = Rottnest::new(store.as_ref(), "idx", rot_config(parallelism));
    let before = store.stats();
    let sim0 = clock.now_micros();
    let wall = Instant::now();
    rot.index(&table, w.kind, w.column).unwrap().unwrap();
    let build = Phase {
        sim_s: (clock.now_micros() - sim0) as f64 / 1e6,
        cpu_s: wall.elapsed().as_secs_f64(),
        gets: store.stats().since(&before).gets,
        puts: store.stats().since(&before).puts,
    };

    let rows_per_sec = w.rows as f64 / (append.sim_s + build.sim_s).max(1e-9);
    IngestRun {
        append,
        build,
        rows_per_sec,
    }
}

struct Report {
    name: &'static str,
    rows: u64,
    serial: IngestRun,
    parallel: IngestRun,
}

impl Report {
    fn build_speedup(&self) -> f64 {
        self.serial.build.sim_s / self.parallel.build.sim_s.max(1e-9)
    }

    fn ingest_speedup(&self) -> f64 {
        (self.serial.append.sim_s + self.serial.build.sim_s)
            / (self.parallel.append.sim_s + self.parallel.build.sim_s).max(1e-9)
    }

    /// Worst parallel/serial request-count ratio across the build phase's
    /// GETs and PUTs. The pipeline is replay-deterministic, so this must
    /// be exactly 1.0 — it is the metric the bench gate holds flat.
    fn request_ratio(&self) -> f64 {
        let gets = self.parallel.build.gets as f64 / (self.serial.build.gets as f64).max(1.0);
        let puts = self.parallel.build.puts as f64 / (self.serial.build.puts as f64).max(1.0);
        gets.max(puts)
    }

    fn json(&self) -> String {
        format!(
            "    {{\n      \"workload\": \"{}\",\n      \"rows\": {},\n      \"serial\": {},\n      \"parallel\": {},\n      \"build_sim_speedup\": {:.2},\n      \"ingest_sim_speedup\": {:.2},\n      \"build_request_ratio\": {:.3}\n    }}",
            self.name,
            self.rows,
            run_json(&self.serial),
            run_json(&self.parallel),
            self.build_speedup(),
            self.ingest_speedup(),
            self.request_ratio(),
        )
    }
}

fn run_json(r: &IngestRun) -> String {
    format!(
        "{{ \"append_sim_s\": {:.3}, \"build_sim_s\": {:.3}, \"append_cpu_s\": {:.3}, \"build_cpu_s\": {:.3}, \"rows_per_sec\": {:.0}, \"append_gets\": {}, \"append_puts\": {}, \"build_gets\": {}, \"build_puts\": {} }}",
        r.append.sim_s,
        r.build.sim_s,
        r.append.cpu_s,
        r.build.cpu_s,
        r.rows_per_sec,
        r.append.gets,
        r.append.puts,
        r.build.gets,
        r.build.puts,
    )
}

fn main() {
    println!(
        "\n=== ingest pipeline: serial vs parallelism {PARALLELISM} (bit-identical output) ==="
    );

    let reports: Vec<Report> = workloads()
        .iter()
        .map(|w| {
            let serial = run_ingest(w, 1);
            let parallel = run_ingest(w, PARALLELISM);
            let r = Report {
                name: w.name,
                rows: w.rows,
                serial,
                parallel,
            };
            println!(
                "{:<16} build {:>6.2}s -> {:>6.2}s sim ({:>4.2}x)   ingest {:>7.0} -> {:>7.0} rows/s   req ratio {:.3}",
                r.name,
                r.serial.build.sim_s,
                r.parallel.build.sim_s,
                r.build_speedup(),
                r.serial.rows_per_sec,
                r.parallel.rows_per_sec,
                r.request_ratio(),
            );
            r
        })
        .collect();

    let fm_speedup = reports
        .iter()
        .find(|r| r.name == "build_substring")
        .map(Report::build_speedup)
        .unwrap_or(0.0);
    let worst_ratio = reports
        .iter()
        .map(Report::request_ratio)
        .fold(0.0f64, f64::max);

    let body = format!(
        "{{\n  \"parallelism\": {PARALLELISM},\n  \"workloads\": [\n{}\n  ],\n  \"fm_build_sim_speedup\": {fm_speedup:.2},\n  \"max_build_request_ratio\": {worst_ratio:.3}\n}}\n",
        reports
            .iter()
            .map(Report::json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write("BENCH_build.json", &body).expect("write BENCH_build.json");
    println!("\nwrote BENCH_build.json");
    println!(
        "FM build sim speedup {fm_speedup:.2}x (target >= 2x), max build request ratio {worst_ratio:.3} (target = 1.000: identical GET/PUT counts)"
    );
}
