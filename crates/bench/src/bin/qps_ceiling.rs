//! §VII-D3 — throughput limitations: Rottnest's QPS ceiling from S3's
//! 5,500 GET/s-per-prefix limit.
//!
//! The paper: "this limit typically caps Rottnest's QPS at 10–100. However
//! … Rottnest already underperforms \[the\] copy-data approach at these QPS
//! levels (10 QPS = 2.52×10⁷ total queries at 10 months)", so the cap does
//! not change the phase-diagram conclusions.
//!
//! This harness measures GET requests per query for each application on a
//! built index, derives `max QPS = 5500 / GETs-per-query`, and checks the
//! corresponding 10-month total query count against the copy-data boundary.

use rottnest::Query;
use rottnest_bench::{
    text_scenario, uuid_scenario, vector_scenario, write_csv, TEXT_COL, UUID_COL, VEC_COL,
};
use rottnest_ivfpq::SearchParams;
use rottnest_object_store::ObjectStore;

fn main() {
    let mut csv = String::from("app,gets_per_query,max_qps,queries_in_10_months_at_cap\n");
    println!("\n=== §VII-D3: QPS ceiling from the 5500 GET/s per-prefix limit ===");
    println!(
        "{:<10} {:>14} {:>9} {:>24}",
        "app", "GETs/query", "max QPS", "10-month total @ cap"
    );

    let mut report = |name: &str, gets: f64| {
        let qps = 5500.0 / gets.max(1.0);
        let ten_months = qps * 3600.0 * 24.0 * 30.0 * 10.0;
        csv.push_str(&format!("{name},{gets:.1},{qps:.0},{ten_months:.2e}\n"));
        println!("{name:<10} {gets:>14.1} {qps:>9.0} {ten_months:>24.2e}");
    };

    {
        let (s, keys) = uuid_scenario(8, 10_000, 51);
        let table = s.table();
        let snap = table.snapshot().unwrap();
        let rot = s.rottnest();
        let before = s.store.stats();
        let n = 8;
        for k in keys.iter().step_by(keys.len() / n).take(n) {
            rot.search(&table, &snap, UUID_COL, &Query::UuidEq { key: k, k: 1 })
                .unwrap();
        }
        report(
            "uuid",
            s.store.stats().since(&before).gets as f64 / n as f64,
        );
    }
    {
        let (s, wl) = text_scenario(6, 200, 52);
        let table = s.table();
        let snap = table.snapshot().unwrap();
        let rot = s.rottnest();
        let patterns = [
            wl.midfreq_word().as_bytes().to_vec(),
            b"NEEDLE-0002-XYZZY".to_vec(),
        ];
        let before = s.store.stats();
        for p in &patterns {
            rot.search(
                &table,
                &snap,
                TEXT_COL,
                &Query::Substring { pattern: p, k: 10 },
            )
            .unwrap();
        }
        report(
            "substring",
            s.store.stats().since(&before).gets as f64 / patterns.len() as f64,
        );
    }
    {
        let (s, queries) = vector_scenario(6, 2_000, 32, 53);
        let table = s.table();
        let snap = table.snapshot().unwrap();
        let rot = s.rottnest();
        let before = s.store.stats();
        let n = 6;
        for q in queries.iter().take(n) {
            rot.search(
                &table,
                &snap,
                VEC_COL,
                &Query::VectorNn {
                    query: q,
                    params: SearchParams {
                        k: 10,
                        nprobe: 8,
                        refine: 64,
                    },
                },
            )
            .unwrap();
        }
        report(
            "vector",
            s.store.stats().since(&before).gets as f64 / n as f64,
        );
    }

    write_csv("qps_ceiling.csv", &csv);
    println!(
        "\npaper's conclusion holds when max QPS lands in the 10–100+ range yet the\n\
         corresponding 10-month totals sit beyond the copy-data boundary of Figs 7/9"
    );
}
