//! Bench-regression gate: compares a freshly generated bench report
//! against the committed baseline and fails (exit 1) when a gated metric
//! regressed beyond tolerance.
//!
//! Usage: `bench_gate <baseline.json> <candidate.json>`, for any of
//! `BENCH_search.json`, `BENCH_build.json`, `BENCH_serve.json`, or
//! `BENCH_kernels.json`.
//!
//! Only the *stable* metrics are compared — per-workload
//! `qps_speedup` / `gets_per_query_ratio` (search), `build_sim_speedup` /
//! `build_request_ratio` (ingest), `shed_rate` / `p999_ms` /
//! `dedup_hit_rate` / `pool_qps` / `executor_threads` /
//! `retry_amplification` / `brownout_recovery_ms` / `brownout_qps`
//! (serving, all virtual-time — the pooled workload floors its
//! admission-ceiling throughput and ceilings its modeled thread count;
//! the outage workload ceilings its retry amplification and brownout
//! recovery and floors its brownout throughput), `kernel_speedup`
//! (succinct kernels vs their in-process baselines, saturated at a
//! per-kernel cap so host noise above the cap never shows), and the
//! aggregate mins/maxes. The simulation-derived metrics come from
//! simulated request counts and latencies, never host wall-clock time,
//! so they are byte-stable across machines:
//!
//! * a speedup (or dedup rate) may not drop below `baseline × 0.85`;
//! * a requests ratio, shed rate, or tail latency may not rise above
//!   `baseline × 1.15` (plus a small absolute epsilon so an all-cached
//!   `0.000` baseline still tolerates a stray request).
//!
//! A metric absent from a workload block is simply not compared, so the
//! same binary gates every report shape. The JSON is the fixed shape the
//! benches write, so parsing is a keyword scan — no JSON dependency (the
//! workspace has none).

use std::process::ExitCode;

/// Relative slack on every compared metric.
const TOLERANCE: f64 = 0.15;
/// Absolute slack for near-zero ratios (15% of 0.000 is still 0.000).
const EPSILON: f64 = 0.01;

/// The number following `"key":` in `text`, if present.
fn num_after(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Per-workload metrics gated as "higher is better" when present.
const FLOOR_METRICS: [&str; 8] = [
    "qps_speedup",
    "build_sim_speedup",
    "dedup_hit_rate",
    "kernel_speedup",
    "batch_share",
    "hedge_win_rate",
    "pool_qps",
    "brownout_qps",
];
/// Per-workload metrics gated as "lower is better" when present.
const CEILING_METRICS: [&str; 7] = [
    "gets_per_query_ratio",
    "build_request_ratio",
    "shed_rate",
    "p999_ms",
    "executor_threads",
    "retry_amplification",
    "brownout_recovery_ms",
];

struct Workload {
    name: String,
    floors: [Option<f64>; FLOOR_METRICS.len()],
    ceilings: [Option<f64>; CEILING_METRICS.len()],
}

/// Every workload block, in file order. The benches write one
/// `"workload": "<name>"` per block, with the block's own metrics before
/// the next block starts; whichever gated metrics the block carries are
/// captured, blocks with none are skipped.
fn parse_workloads(text: &str) -> Vec<Workload> {
    let mut out = Vec::new();
    for chunk in text.split("\"workload\":").skip(1) {
        let name = chunk.split('"').nth(1).unwrap_or_default().to_string();
        let block = chunk
            .find("\"workload\":")
            .map_or(chunk, |next| &chunk[..next]);
        let floors = FLOOR_METRICS.map(|key| num_after(block, key));
        let ceilings = CEILING_METRICS.map(|key| num_after(block, key));
        if floors.iter().chain(ceilings.iter()).all(Option::is_none) {
            continue;
        }
        out.push(Workload {
            name,
            floors,
            ceilings,
        });
    }
    out
}

struct Gate {
    failures: u32,
}

impl Gate {
    /// Higher is better: candidate must stay within `TOLERANCE` below base.
    fn floor(&mut self, what: &str, base: f64, cand: f64) {
        let min = base * (1.0 - TOLERANCE) - EPSILON;
        let ok = cand >= min;
        println!(
            "  {} {what}: {cand:.3} vs baseline {base:.3} (floor {min:.3})",
            if ok { "ok  " } else { "FAIL" }
        );
        self.failures += u32::from(!ok);
    }

    /// Lower is better: candidate must stay within `TOLERANCE` above base.
    fn ceiling(&mut self, what: &str, base: f64, cand: f64) {
        let max = base * (1.0 + TOLERANCE) + EPSILON;
        let ok = cand <= max;
        println!(
            "  {} {what}: {cand:.3} vs baseline {base:.3} (ceiling {max:.3})",
            if ok { "ok  " } else { "FAIL" }
        );
        self.failures += u32::from(!ok);
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(base_path), Some(cand_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_gate <baseline.json> <candidate.json>");
        return ExitCode::FAILURE;
    };
    let base = std::fs::read_to_string(&base_path).expect("read baseline json");
    let cand = std::fs::read_to_string(&cand_path).expect("read candidate json");

    let base_wl = parse_workloads(&base);
    let cand_wl = parse_workloads(&cand);
    assert!(
        !base_wl.is_empty(),
        "baseline has no workloads: {base_path}"
    );

    let mut gate = Gate { failures: 0 };
    for b in &base_wl {
        println!("workload {}", b.name);
        let Some(c) = cand_wl.iter().find(|c| c.name == b.name) else {
            println!("  FAIL missing from candidate run");
            gate.failures += 1;
            continue;
        };
        for (i, key) in FLOOR_METRICS.iter().enumerate() {
            if let (Some(b), Some(c)) = (b.floors[i], c.floors[i]) {
                gate.floor(key, b, c);
            }
        }
        for (i, key) in CEILING_METRICS.iter().enumerate() {
            if let (Some(b), Some(c)) = (b.ceilings[i], c.ceilings[i]) {
                gate.ceiling(key, b, c);
            }
        }
    }

    println!("aggregates");
    for key in [
        "min_qps_speedup",
        "fm_build_sim_speedup",
        "hot_dedup_hit_rate",
        "min_kernel_speedup",
        "min_batch_share",
        "min_hedge_win_rate",
    ] {
        if let (Some(b), Some(c)) = (num_after(&base, key), num_after(&cand, key)) {
            gate.floor(key, b, c);
        }
    }
    for key in [
        "max_gets_per_query_ratio",
        "max_warm_gets_per_query_ratio",
        "max_build_request_ratio",
        "max_shed_rate",
        "max_p999_ms",
    ] {
        if let (Some(b), Some(c)) = (num_after(&base, key), num_after(&cand, key)) {
            gate.ceiling(key, b, c);
        }
    }

    if gate.failures > 0 {
        println!("bench gate: {} check(s) FAILED", gate.failures);
        ExitCode::FAILURE
    } else {
        println!("bench gate: OK ({} workloads compared)", base_wl.len());
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "workloads": [
    { "workload": "uuid", "qps_speedup": 4.00, "gets_per_query_ratio": 0.250 },
    { "workload": "warm_uuid", "qps_speedup": 1.00, "gets_per_query_ratio": 0.000 }
  ],
  "min_qps_speedup": 4.00,
  "max_gets_per_query_ratio": 0.250
}"#;

    const BUILD_SAMPLE: &str = r#"{
  "workloads": [
    { "workload": "build_substring",
      "serial": { "build_sim_s": 1.900, "build_gets": 97 },
      "parallel": { "build_sim_s": 0.820, "build_gets": 97 },
      "build_sim_speedup": 2.31, "build_request_ratio": 1.000 }
  ],
  "fm_build_sim_speedup": 2.31,
  "max_build_request_ratio": 1.000
}"#;

    const SERVE_SAMPLE: &str = r#"{
  "workloads": [
    { "workload": "serve_10x", "p999_ms": 60, "shed_rate": 0.900, "dedup_hit_rate": 0.000 },
    { "workload": "serve_hotkey", "p999_ms": 20, "shed_rate": 0.000, "dedup_hit_rate": 0.975 },
    { "workload": "serve_fair_2x", "p999_ms": 60, "shed_rate": 0.498, "dedup_hit_rate": 0.000, "batch_share": 0.201 },
    { "workload": "serve_hedge", "p999_ms": 40, "shed_rate": 0.000, "dedup_hit_rate": 0.000, "hedged": 15, "hedge_wins": 15, "hedge_win_rate": 1.000 },
    { "workload": "serve_pool_16x", "p999_ms": 20, "shed_rate": 0.000, "dedup_hit_rate": 0.000, "pool_qps": 3200.000, "executor_threads": 16 },
    { "workload": "serve_outage", "p999_ms": 98, "shed_rate": 0.401, "dedup_hit_rate": 0.000, "batch_share": 0.150, "retry_amplification": 0.090, "brownout_recovery_ms": 222, "brownout_qps": 99.333 }
  ],
  "max_shed_rate": 0.900,
  "max_p999_ms": 60,
  "hot_dedup_hit_rate": 0.975,
  "min_batch_share": 0.201,
  "min_hedge_win_rate": 1.000
}"#;

    #[test]
    fn parses_every_workload_block() {
        let wl = parse_workloads(SAMPLE);
        assert_eq!(wl.len(), 2);
        assert_eq!(wl[0].name, "uuid");
        assert_eq!(wl[0].floors[0], Some(4.00));
        assert_eq!(wl[1].ceilings[0], Some(0.000));
        // Search blocks carry no build, serve, kernel, or class metrics.
        assert_eq!(wl[0].floors[1..], [None; FLOOR_METRICS.len() - 1]);
        assert_eq!(wl[0].ceilings[1..], [None; CEILING_METRICS.len() - 1]);
    }

    #[test]
    fn parses_build_blocks_with_their_own_metrics() {
        let wl = parse_workloads(BUILD_SAMPLE);
        assert_eq!(wl.len(), 1);
        assert_eq!(wl[0].name, "build_substring");
        assert_eq!(
            wl[0].floors,
            [None, Some(2.31), None, None, None, None, None, None]
        );
        assert_eq!(
            wl[0].ceilings,
            [None, Some(1.000), None, None, None, None, None]
        );
        // `build_sim_speedup` must not swallow the `build_sim_s` field of
        // the nested serial/parallel objects, and the aggregate key stays
        // distinct from the per-workload one.
        assert_eq!(num_after(BUILD_SAMPLE, "fm_build_sim_speedup"), Some(2.31));
        assert_eq!(
            num_after(BUILD_SAMPLE, "max_build_request_ratio"),
            Some(1.0)
        );
    }

    #[test]
    fn parses_serve_blocks_with_their_own_metrics() {
        let wl = parse_workloads(SERVE_SAMPLE);
        assert_eq!(wl.len(), 6);
        assert_eq!(wl[0].name, "serve_10x");
        assert_eq!(
            wl[0].floors,
            [None, None, Some(0.0), None, None, None, None, None]
        );
        assert_eq!(
            wl[0].ceilings,
            [None, None, Some(0.900), Some(60.0), None, None, None]
        );
        assert_eq!(wl[1].floors[2], Some(0.975));
        // The fairness and hedge floors only appear on their workloads.
        assert_eq!(wl[2].name, "serve_fair_2x");
        assert_eq!(wl[2].floors[4], Some(0.201));
        assert_eq!(wl[0].floors[4], None);
        assert_eq!(wl[3].name, "serve_hedge");
        assert_eq!(wl[3].floors[5], Some(1.000));
        assert_eq!(wl[2].floors[5], None);
        // The pooled workload floors its throughput and ceilings its
        // modeled thread count; no other workload carries either.
        assert_eq!(wl[4].name, "serve_pool_16x");
        assert_eq!(wl[4].floors[6], Some(3200.0));
        assert_eq!(wl[4].ceilings[4], Some(16.0));
        assert_eq!(wl[0].floors[6], None);
        assert_eq!(wl[0].ceilings[4], None);
        // The outage workload ceilings amplification + recovery and
        // floors brownout throughput; no other workload carries them.
        assert_eq!(wl[5].name, "serve_outage");
        assert_eq!(wl[5].floors[7], Some(99.333));
        assert_eq!(wl[5].ceilings[5], Some(0.090));
        assert_eq!(wl[5].ceilings[6], Some(222.0));
        assert_eq!(wl[0].floors[7], None);
        assert_eq!(wl[0].ceilings[5], None);
        assert_eq!(wl[0].ceilings[6], None);
        // Aggregates stay distinct from the per-workload keys.
        assert_eq!(num_after(SERVE_SAMPLE, "hot_dedup_hit_rate"), Some(0.975));
        assert_eq!(num_after(SERVE_SAMPLE, "max_shed_rate"), Some(0.900));
        assert_eq!(num_after(SERVE_SAMPLE, "max_p999_ms"), Some(60.0));
        assert_eq!(num_after(SERVE_SAMPLE, "min_batch_share"), Some(0.201));
        assert_eq!(num_after(SERVE_SAMPLE, "min_hedge_win_rate"), Some(1.000));
        let tail = &SERVE_SAMPLE[SERVE_SAMPLE.rfind(']').unwrap()..];
        assert_eq!(num_after(tail, "shed_rate"), None);
        assert_eq!(num_after(tail, "dedup_hit_rate"), None);
        assert_eq!(num_after(tail, "p999_ms"), None);
        assert_eq!(num_after(tail, "batch_share"), None);
        assert_eq!(num_after(tail, "hedge_win_rate"), None);
        assert_eq!(num_after(tail, "pool_qps"), None);
        assert_eq!(num_after(tail, "executor_threads"), None);
        assert_eq!(num_after(tail, "retry_amplification"), None);
        assert_eq!(num_after(tail, "brownout_recovery_ms"), None);
        assert_eq!(num_after(tail, "brownout_qps"), None);
    }

    const KERNELS_SAMPLE: &str = r#"{
  "queries_per_batch": 4096,
  "workloads": [
    { "workload": "kernel_rank1", "baseline_ns_per_op": 120.0, "optimized_ns_per_op": 30.0, "measured_speedup": 4.00, "kernel_speedup": 2.00 },
    { "workload": "kernel_rank_range", "baseline_ns_per_op": 400.0, "optimized_ns_per_op": 280.0, "measured_speedup": 1.43, "kernel_speedup": 1.30 }
  ],
  "min_kernel_speedup": 1.30
}"#;

    #[test]
    fn parses_kernel_blocks_with_their_own_metrics() {
        let wl = parse_workloads(KERNELS_SAMPLE);
        assert_eq!(wl.len(), 2);
        assert_eq!(wl[0].name, "kernel_rank1");
        // Only the capped `kernel_speedup` is gated — `measured_speedup`
        // and the ns/op fields must not leak into any metric slot.
        assert_eq!(
            wl[0].floors,
            [None, None, None, Some(2.00), None, None, None, None]
        );
        assert_eq!(wl[0].ceilings, [None; CEILING_METRICS.len()]);
        assert_eq!(wl[1].floors[3], Some(1.30));
        // The aggregate stays distinct from the per-workload key.
        assert_eq!(num_after(KERNELS_SAMPLE, "min_kernel_speedup"), Some(1.30));
        let tail = &KERNELS_SAMPLE[KERNELS_SAMPLE.rfind(']').unwrap()..];
        assert_eq!(num_after(tail, "kernel_speedup"), None);
    }

    #[test]
    fn aggregate_keys_do_not_collide_with_workload_keys() {
        // `"qps_speedup":` must not match `"min_qps_speedup":` etc.
        assert_eq!(num_after(SAMPLE, "min_qps_speedup"), Some(4.00));
        assert_eq!(num_after(SAMPLE, "max_gets_per_query_ratio"), Some(0.250));
        let tail = &SAMPLE[SAMPLE.rfind(']').unwrap()..];
        assert_eq!(num_after(tail, "qps_speedup"), None);
    }

    #[test]
    fn tolerance_bands() {
        let mut g = Gate { failures: 0 };
        g.floor("s", 4.0, 3.5); // within 15%
        g.ceiling("r", 0.25, 0.28); // within 15%
        g.ceiling("r0", 0.0, 0.005); // epsilon admits near-zero noise
        assert_eq!(g.failures, 0);
        g.floor("s", 4.0, 3.0); // below the floor
        g.ceiling("r", 0.25, 0.30); // above the ceiling
        assert_eq!(g.failures, 2);
    }
}
