//! Figure 7: phase-change diagrams for (a) substring search and (b) UUID
//! search — which approach (copy data / brute force / Rottnest) minimizes
//! TCO at each (months, total queries) point.
//!
//! Reproduces the paper's qualitative claims:
//! * Rottnest becomes competitive within ~1–2 days of operation;
//! * at 10 months its winning band spans ≥4 orders of magnitude of query
//!   counts;
//! * the substring boundary against brute force curves up (indices almost
//!   as large as the data), while the UUID boundary stays flat (§VII-B1).

use rottnest::Query;
use rottnest_bench::{text_scenario, uuid_scenario, write_csv, TcoInputs, TEXT_COL, UUID_COL};
use rottnest_tco::{prices, PhaseDiagram};

fn main() {
    // --- Substring search ---------------------------------------------
    let (text, wl) = text_scenario(8, 400, 1);
    let mut patterns: Vec<Vec<u8>> = (0..4)
        .map(|f| format!("NEEDLE-{f:04}-XYZZY").into_bytes())
        .collect();
    patterns.push(wl.midfreq_word().as_bytes().to_vec());
    let queries: Vec<Query<'_>> = patterns
        .iter()
        .map(|p| Query::Substring { pattern: p, k: 10 })
        .collect();

    let r_lat = text.rottnest_latency(TEXT_COL, &queries);
    let b_lat = text.brute_latency(TEXT_COL, &queries);
    let substring = TcoInputs {
        rottnest_latency_s: r_lat,
        brute_latency_1w_s: b_lat,
        scale: 304e9 / text.data_bytes as f64, // C4: 304 GB compressed
        data_bytes: text.data_bytes,
        index_bytes: text.index_bytes,
        build_seconds: text.index_build_seconds,
        dedicated_hourly: prices::R6G_LARGE_SEARCH_HOURLY,
    };
    report("fig7a_substring", &substring);

    // --- UUID search ----------------------------------------------------
    let (uuid, keys) = uuid_scenario(8, 20_000, 2);
    let queries: Vec<Query<'_>> = keys
        .iter()
        .step_by(keys.len() / 8)
        .map(|k| Query::UuidEq { key: k, k: 1 })
        .collect();
    let r_lat = uuid.rottnest_latency(UUID_COL, &queries);
    let b_lat = uuid.brute_latency(UUID_COL, &queries);
    let uuid_inputs = TcoInputs {
        rottnest_latency_s: r_lat,
        brute_latency_1w_s: b_lat,
        scale: 2e9 / keys.len() as f64, // 2 billion hashes
        data_bytes: uuid.data_bytes,
        index_bytes: uuid.index_bytes,
        build_seconds: uuid.index_build_seconds,
        dedicated_hourly: prices::R6G_LARGE_SEARCH_HOURLY,
    };
    report("fig7b_uuid", &uuid_inputs);
}

fn report(tag: &str, inputs: &TcoInputs) {
    let approaches = inputs.approaches();
    let diagram = PhaseDiagram::compute(&approaches);
    write_csv(&format!("{tag}.csv"), &diagram.to_csv());

    println!("\n=== {tag} ===");
    println!(
        "measured: rottnest {:.2}s/query, brute(1w, harness scale) {:.2}s, scale ×{:.0}",
        inputs.rottnest_latency_s, inputs.brute_latency_1w_s, inputs.scale
    );
    let r = approaches.rottnest;
    let b = approaches.brute_force;
    let c = approaches.copy_data;
    println!(
        "params: ic_r=${:.2} cpm_r=${:.2}/mo cpq_r=${:.6} | cpm_bf=${:.2}/mo cpq_bf=${:.4} | cpm_i=${:.2}/mo",
        r.index_cost,
        r.cost_per_month,
        r.cost_per_query,
        b.cost_per_month,
        b.cost_per_query,
        c.cost_per_month
    );
    for months in [0.03, 0.1, 1.0, 10.0, 120.0] {
        let band = diagram.rottnest_decades_at(months);
        println!("rottnest band at {months:>6.2} months: {band:.1} decades of query volume");
    }
    if let Some(b) = diagram
        .rottnest_band()
        .iter()
        .find(|b| b.rottnest_lo.is_some())
    {
        println!(
            "rottnest first wins at {:.3} months (≈{:.1} days)",
            b.months,
            b.months * 30.0
        );
    }
    println!("{}", diagram.render_ascii());
}
