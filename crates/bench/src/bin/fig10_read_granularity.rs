//! Figure 10: (a) object-store range-GET latency vs read size at different
//! concurrency levels; (b) raw 300 KiB byte-range reads vs real page reads
//! (fetch + decompress + decode) through Rottnest's reader.
//!
//! Shape to reproduce: latency is flat until the ~1 MiB knee then grows
//! linearly (independent of 1–512-way concurrency), which puts Parquet
//! pages (~300 KiB) squarely in the latency-bound regime — and decoding a
//! real page costs barely more than fetching raw bytes.

use bytes::Bytes;
use rottnest_bench::write_csv;
use rottnest_format::{
    page_table::PageTable, ColumnData, DataType, Field, FileWriter, PageReader, RecordBatch,
    Schema, WriterOptions,
};
use rottnest_object_store::{LatencyModel, MemoryStore, ObjectStore, RangeRequest};

fn main() {
    // --- (a) read-size sweep × concurrency --------------------------------
    let store = MemoryStore::with_model_and_limit(LatencyModel::default(), 0);
    // This sweep measures *raw* request concurrency over deliberately
    // overlapping ranges; range coalescing would fold them into one GET.
    store.set_coalesce_gap(None);
    let blob = Bytes::from(vec![0x5au8; 32 << 20]);
    store.put("blob", blob).unwrap();
    let clock = store.clock().unwrap();

    let sizes: Vec<u64> = [
        64 << 10,
        128 << 10,
        300 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
        16 << 20,
    ]
    .to_vec();
    let concurrencies = [1usize, 8, 64, 512];
    let mut csv = String::from("concurrency,read_bytes,latency_ms,gets,coalesced_gets\n");
    println!("\n=== Figure 10a: range-GET latency vs read size ===");
    println!("{:>12} {:>10} {:>12}", "concurrency", "read", "latency(ms)");
    for &conc in &concurrencies {
        for &size in &sizes {
            let reqs: Vec<RangeRequest> = (0..conc)
                .map(|i| RangeRequest::new("blob", i as u64 * 64..i as u64 * 64 + size))
                .collect();
            let before = store.stats();
            let (_, us) = clock.time(|| store.get_ranges(&reqs).unwrap());
            let delta = store.stats().since(&before);
            let ms = us as f64 / 1000.0;
            csv.push_str(&format!(
                "{conc},{size},{ms:.2},{},{}\n",
                delta.gets, delta.coalesced_gets
            ));
            if conc == 1 || size == 300 << 10 {
                println!("{conc:>12} {:>9}K {ms:>12.1}", size >> 10);
            }
        }
    }
    write_csv("fig10a_read_granularity.csv", &csv);

    // --- (b) raw 300 KiB ranges vs real page reads -------------------------
    // Build a text file whose pages compress to roughly 300 KiB.
    let schema = Schema::new(vec![Field::new("body", DataType::Utf8)]);
    let mut wl = rottnest_workloads::TextWorkload::new(5, 20_000, 120);
    let docs = wl.docs(6_000);
    let batch = RecordBatch::new(schema.clone(), vec![ColumnData::from_strings(&docs)]).unwrap();
    let mut writer = FileWriter::with_options(
        schema,
        WriterOptions {
            page_raw_bytes: 1 << 20,
            ..Default::default()
        },
    );
    writer.write_batch(&batch).unwrap();
    let meta = writer.finish_into(store.as_ref(), "pages.lkpq").unwrap();
    let table = PageTable::from_meta(&meta, 0).unwrap();
    let avg_page: u64 = table.pages().iter().map(|p| p.size).sum::<u64>() / table.len() as u64;

    let reader = PageReader::new(store.as_ref());
    let n = table.len().min(16);

    // Simulated fetch cost: identical by construction; measure it.
    let before = store.stats();
    let (_, raw_us) = clock.time(|| {
        let reqs: Vec<RangeRequest> = (0..n)
            .map(|i| {
                let loc = table.page(i).unwrap();
                RangeRequest::new("pages.lkpq", loc.offset..loc.offset + loc.size)
            })
            .collect();
        store.get_ranges(&reqs).unwrap();
    });
    let raw_delta = store.stats().since(&before);
    let before = store.stats();
    let (_, page_us) = clock.time(|| {
        let reqs: Vec<(&str, &PageTable, usize)> =
            (0..n).map(|i| ("pages.lkpq", &table, i)).collect();
        reader.read_pages(&reqs, DataType::Utf8).unwrap();
    });
    let page_delta = store.stats().since(&before);

    // Warm page-cache reads: the same pages again through the cached
    // reader — every page a cache hit, zero GETs.
    let session = rottnest_format::PageCacheSession::new();
    let cached = PageReader::cached(store.as_ref(), &session);
    let warm_reqs: Vec<(&str, &PageTable, usize)> =
        (0..n).map(|i| ("pages.lkpq", &table, i)).collect();
    cached.read_pages(&warm_reqs, DataType::Utf8).unwrap(); // populate
    let before = store.stats();
    let (_, warm_us) = clock.time(|| {
        cached.read_pages(&warm_reqs, DataType::Utf8).unwrap();
    });
    let warm_delta = store.stats().since(&before);

    // Decode overhead in *wall-clock* CPU time (decompression cost).
    let wall_raw = std::time::Instant::now();
    for i in 0..n {
        let loc = table.page(i).unwrap();
        store
            .get_range("pages.lkpq", loc.offset..loc.offset + loc.size)
            .unwrap();
    }
    let wall_raw = wall_raw.elapsed().as_secs_f64();
    let wall_decode = std::time::Instant::now();
    for i in 0..n {
        reader
            .read_page("pages.lkpq", &table, i, DataType::Utf8)
            .unwrap();
    }
    let wall_decode = wall_decode.elapsed().as_secs_f64();
    let wall_warm = std::time::Instant::now();
    cached.read_pages(&warm_reqs, DataType::Utf8).unwrap();
    let wall_warm = wall_warm.elapsed().as_secs_f64();

    let mut csv = String::from(
        "mode,pages,avg_page_bytes,sim_latency_ms,wall_cpu_s,gets,coalesced_gets,page_cache_hits,page_cache_misses\n",
    );
    csv.push_str(&format!(
        "raw_range,{n},{avg_page},{:.2},{wall_raw:.4},{},{},{},{}\n",
        raw_us as f64 / 1000.0,
        raw_delta.gets,
        raw_delta.coalesced_gets,
        raw_delta.page_cache_hits,
        raw_delta.page_cache_misses,
    ));
    csv.push_str(&format!(
        "page_decode,{n},{avg_page},{:.2},{wall_decode:.4},{},{},{},{}\n",
        page_us as f64 / 1000.0,
        page_delta.gets,
        page_delta.coalesced_gets,
        page_delta.page_cache_hits,
        page_delta.page_cache_misses,
    ));
    csv.push_str(&format!(
        "page_decode_warm,{n},{avg_page},{:.2},{wall_warm:.4},{},{},{},{}\n",
        warm_us as f64 / 1000.0,
        warm_delta.gets,
        warm_delta.coalesced_gets,
        warm_delta.page_cache_hits,
        warm_delta.page_cache_misses,
    ));
    write_csv("fig10b_page_vs_raw.csv", &csv);

    println!("\n=== Figure 10b: raw ranges vs page decode ===");
    println!(
        "avg page {:.0} KiB | sim latency: raw {:.1} ms vs page {:.1} ms | wall cpu: raw {:.1} ms vs decode {:.1} ms",
        avg_page as f64 / 1024.0,
        raw_us as f64 / 1000.0,
        page_us as f64 / 1000.0,
        wall_raw * 1000.0,
        wall_decode * 1000.0,
    );
    println!(
        "warm page cache: {} hits, {} GETs, sim latency {:.1} ms",
        warm_delta.page_cache_hits,
        warm_delta.gets,
        warm_us as f64 / 1000.0,
    );
    println!("conclusion: decompression overhead is dwarfed by the ~30ms first-byte latency");
}
