//! Ablation of the componentization design choice (§V-B, Figure 6): three
//! ways to put a search tree on object storage, measured on the same trie
//! workload.
//!
//! * **monolithic** — serialize the whole index as one object; every query
//!   downloads everything (large sequential read, huge read amplification);
//! * **memory-mapped** — every node access is its own dependent range GET
//!   (minimal bytes, maximal request *depth*);
//! * **componentized** (Rottnest) — lookup-table root + one component per
//!   bucket: ≤ 2 dependent round trips, bytes ≈ one bucket.

use rottnest_bench::write_csv;
use rottnest_object_store::{MemoryStore, ObjectStore};
use rottnest_trie::{Posting, TrieBuilder, TrieIndex};
use rottnest_workloads::UuidWorkload;

fn main() {
    let mut csv = String::from("keys,strategy,latency_ms,bytes_read,round_trips\n");
    println!("\n=== Ablation: componentization (trie lookup) ===");
    println!(
        "{:>9} {:>15} {:>12} {:>12} {:>12}",
        "keys", "strategy", "latency(ms)", "KiB read", "round trips"
    );

    for &n_keys in &[20_000usize, 100_000, 500_000] {
        let store = MemoryStore::new();
        let mut wl = UuidWorkload::new(1, 16);
        let keys = wl.keys(n_keys);
        let mut b = TrieBuilder::new(16).unwrap();
        for (i, k) in keys.iter().enumerate() {
            b.add(k, Posting::new(0, i as u32)).unwrap();
        }
        b.finish_into(store.as_ref(), "t.idx").unwrap();
        let total_bytes = store.head("t.idx").unwrap().size;
        let model = store.latency_model().clone();
        let clock = store.clock().unwrap();

        // Componentized (measured on the real implementation).
        let probe = &keys[n_keys / 3];
        let (bytes, rts, us) = {
            let before = store.stats();
            let t0 = clock.now_micros();
            let idx = TrieIndex::open(store.as_ref(), "t.idx").unwrap();
            let hits = idx.lookup(probe).unwrap();
            assert!(!hits.is_empty());
            let d = store.stats().since(&before);
            (d.bytes_read, d.gets, clock.now_micros() - t0)
        };
        emit(&mut csv, n_keys, "componentized", us, bytes, rts);

        // Monolithic: one GET of the whole object (modeled).
        let us_mono = model.get_us(total_bytes);
        emit(&mut csv, n_keys, "monolithic", us_mono, total_bytes, 1);

        // Memory-mapped: one dependent GET per trie level. Random 16-byte
        // keys need ~log2(n)+9 bit-levels after path compression; each is a
        // tiny dependent read.
        let levels = ((n_keys as f64).log2().ceil() as u64) + 9;
        let us_mmap = levels * model.get_us(64);
        emit(
            &mut csv,
            n_keys,
            "memory_mapped",
            us_mmap,
            levels * 64,
            levels,
        );
    }
    write_csv("ablation_componentization.csv", &csv);
    println!(
        "\ncomponentized keeps BOTH latency (≈2 RTs) and bytes (one bucket) small;\n\
         monolithic pays bytes ∝ index size, memory-mapped pays ~log(n) dependent RTs"
    );
}

fn emit(csv: &mut String, n: usize, strategy: &str, us: u64, bytes: u64, rts: u64) {
    csv.push_str(&format!(
        "{n},{strategy},{:.2},{bytes},{rts}\n",
        us as f64 / 1000.0
    ));
    println!(
        "{n:>9} {strategy:>15} {:>12.1} {:>12.1} {rts:>12}",
        us as f64 / 1000.0,
        bytes as f64 / 1024.0
    );
}
