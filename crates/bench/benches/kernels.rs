//! Criterion microbenchmarks for the branch-light succinct kernels, each
//! paired with its pre-optimization baseline from
//! [`rottnest_bench::baseline`]: interleaved-directory `rank1` vs the
//! word-scan rank, the fused wavelet `rank_range` vs two independent
//! ranks, the fused LF-step vs the unpinned double-rank descent, the
//! workspace-reusing SA-IS, and the word-parallel trie bit kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rottnest_bench::baseline::{ScanRankBitVec, ScanWavelet};
use rottnest_fm::bitvec::BitVecBuilder;
use rottnest_fm::sais::{suffix_array, suffix_array_with, SaisWorkspace};
use rottnest_fm::wavelet::WaveletMatrix;
use rottnest_trie::bits::{lcp_bits, BitStr};

const BITS: usize = 1 << 20;
const QUERIES: usize = 4096;

fn bench_rank1(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(41);
    let bits: Vec<bool> = (0..BITS).map(|_| rng.gen_bool(0.4)).collect();
    let mut b = BitVecBuilder::with_capacity(bits.len());
    for &bit in &bits {
        b.push(bit);
    }
    let optimized = b.finish();
    let baseline = ScanRankBitVec::from_bits(&bits);
    let positions: Vec<usize> = (0..QUERIES).map(|_| rng.gen_range(0..=BITS)).collect();

    let mut group = c.benchmark_group("rank1");
    group.bench_function("interleaved", |b| {
        b.iter(|| positions.iter().map(|&i| optimized.rank1(i)).sum::<usize>())
    });
    group.bench_function("baseline_scan", |b| {
        b.iter(|| positions.iter().map(|&i| baseline.rank1(i)).sum::<usize>())
    });
    group.finish();
}

fn bench_wavelet_rank_range(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let symbols: Vec<u8> = (0..1 << 18).map(|_| rng.gen()).collect();
    let optimized = WaveletMatrix::build(&symbols);
    let baseline = ScanWavelet::build(&symbols);
    let queries: Vec<(u8, usize, usize)> = (0..QUERIES)
        .map(|_| {
            let a = rng.gen_range(0..symbols.len());
            let b = rng.gen_range(a..=symbols.len());
            (rng.gen(), a, b)
        })
        .collect();

    let mut group = c.benchmark_group("wavelet_rank_range");
    group.bench_function("fused", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&(s, lo, hi)| optimized.rank_range(s, lo, hi).1)
                .sum::<usize>()
        })
    });
    group.bench_function("baseline_two_ranks", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&(s, lo, hi)| baseline.rank_pair(s, lo, hi).1)
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_lf_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(43);
    let symbols: Vec<u8> = (0..1 << 18).map(|_| rng.gen_range(1..=255u8)).collect();
    let optimized = WaveletMatrix::build(&symbols);
    let baseline = ScanWavelet::build(&symbols);
    let rows: Vec<usize> = (0..QUERIES)
        .map(|_| rng.gen_range(0..symbols.len()))
        .collect();

    let mut group = c.benchmark_group("lf_step");
    group.bench_function("fused_access_and_rank", |b| {
        b.iter(|| {
            rows.iter()
                .map(|&i| optimized.access_and_rank(i).1)
                .sum::<usize>()
        })
    });
    group.bench_function("baseline_access_and_rank", |b| {
        b.iter(|| {
            rows.iter()
                .map(|&i| baseline.access_and_rank(i).1)
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_suffix_array(c: &mut Criterion) {
    let mut wl = rottnest_workloads::TextWorkload::new(44, 20_000, 80);
    let mut text = Vec::with_capacity(256 << 10);
    while text.len() < 256 << 10 {
        text.extend_from_slice(wl.doc().as_bytes());
        text.push(b' ');
    }
    text.truncate(256 << 10);

    let mut group = c.benchmark_group("suffix_array");
    group.bench_function("warm_thread_local", |b| b.iter(|| suffix_array(&text)));
    group.bench_function("explicit_workspace", |b| {
        let mut ws = SaisWorkspace::default();
        b.iter(|| suffix_array_with(&text, &mut ws))
    });
    group.finish();
}

fn bench_trie_bits(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(45);
    let a: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
    // Force long common prefixes so the word-parallel path dominates.
    let mut b_bytes = a.clone();
    b_bytes[57] ^= 0x10;
    let s = BitStr::prefix_of(&a, 509);

    let mut group = c.benchmark_group("trie_bits");
    group.bench_function("lcp_bits_64B", |bch| bch.iter(|| lcp_bits(&a, &b_bytes)));
    group.bench_function("slice_unaligned_509b", |bch| bch.iter(|| s.slice(3, 500)));
    group.finish();
}

criterion_group!(
    benches,
    bench_rank1,
    bench_wavelet_rank_range,
    bench_lf_step,
    bench_suffix_array,
    bench_trie_bits
);
criterion_main!(benches);
