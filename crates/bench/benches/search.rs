//! Criterion microbenchmarks: end-to-end index queries (wall-clock CPU of
//! the search path; the *simulated* latencies live in the fig* binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use rottnest_fm::{FmBuilder, FmIndex, Posting};
use rottnest_ivfpq::{IvfPqBuilder, IvfPqIndex, IvfPqParams, SearchParams, VecPosting};
use rottnest_object_store::MemoryStore;
use rottnest_trie::{TrieBuilder, TrieIndex};

fn bench_trie_lookup(c: &mut Criterion) {
    let store = MemoryStore::unmetered();
    let mut wl = rottnest_workloads::UuidWorkload::new(1, 16);
    let keys = wl.keys(100_000);
    let mut b = TrieBuilder::new(16).unwrap();
    for (i, k) in keys.iter().enumerate() {
        b.add(k, rottnest_trie::Posting::new(0, i as u32)).unwrap();
    }
    b.finish_into(store.as_ref(), "t.idx").unwrap();
    let idx = TrieIndex::open(store.as_ref(), "t.idx").unwrap();

    c.bench_function("search/trie_lookup_100k_keys", |bch| {
        let mut i = 0usize;
        bch.iter(|| {
            i = (i + 7919) % keys.len();
            idx.lookup(&keys[i]).unwrap().len()
        })
    });
}

fn bench_fm_queries(c: &mut Criterion) {
    let store = MemoryStore::unmetered();
    let mut wl = rottnest_workloads::TextWorkload::new(2, 20_000, 60);
    let mut b = FmBuilder::new();
    for page in 0..16u32 {
        let docs = wl.docs_with_needle(100, &format!("NEEDLE-{page}"), &[50]);
        for d in &docs {
            b.add_document(Posting::new(0, page), d.as_bytes());
        }
    }
    b.finish_into(store.as_ref(), "f.idx").unwrap();
    let idx = FmIndex::open(store.as_ref(), "f.idx").unwrap();

    c.bench_function("search/fm_count_needle", |bch| {
        bch.iter(|| idx.count(b"NEEDLE-7").unwrap())
    });
    c.bench_function("search/fm_locate_needle", |bch| {
        bch.iter(|| idx.locate_pages(b"NEEDLE-7", 100).unwrap().len())
    });
}

fn bench_ivf_search(c: &mut Criterion) {
    let store = MemoryStore::unmetered();
    let mut wl = rottnest_workloads::VectorWorkload::new(3, 32, 16, 0.5);
    let vectors = wl.vectors(20_000);
    let mut b = IvfPqBuilder::new(
        32,
        IvfPqParams {
            nlist: 64,
            m: 8,
            train_iters: 4,
            seed: 5,
        },
    )
    .unwrap();
    for (i, v) in vectors.iter().enumerate() {
        b.add(VecPosting::new(0, (i / 100) as u32, (i % 100) as u32), v)
            .unwrap();
    }
    b.finish_into(store.as_ref(), "v.idx").unwrap();
    let idx = IvfPqIndex::open(store.as_ref(), "v.idx").unwrap();
    let query = wl.query();
    let fetch = |ids: &[VecPosting]| -> rottnest_ivfpq::Result<Vec<Vec<f32>>> {
        Ok(ids
            .iter()
            .map(|p| vectors[p.posting.page as usize * 100 + p.row as usize].clone())
            .collect())
    };

    c.bench_function("search/ivf_nprobe8_adc", |bch| {
        bch.iter(|| {
            idx.search(
                &query,
                SearchParams {
                    k: 10,
                    nprobe: 8,
                    refine: 0,
                },
                &fetch,
            )
            .unwrap()
            .len()
        })
    });
    c.bench_function("search/ivf_nprobe8_refine64", |bch| {
        bch.iter(|| {
            idx.search(
                &query,
                SearchParams {
                    k: 10,
                    nprobe: 8,
                    refine: 64,
                },
                &fetch,
            )
            .unwrap()
            .len()
        })
    });
}

criterion_group!(
    benches,
    bench_trie_lookup,
    bench_fm_queries,
    bench_ivf_search
);
criterion_main!(benches);
