//! Criterion microbenchmarks: the shared worker pool's small-batch inline
//! threshold. `ordered_parallel_map` runs batches of at most
//! `SMALL_BATCH_INLINE` cheap items on the caller's thread; the
//! `forced_pool` series pushes the same batches through the pool
//! (`ordered_parallel_map_threshold` with threshold 0) to show what the
//! inline fast path saves, and the large-batch pair shows where pool
//! dispatch starts paying for itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rottnest_object_store::{
    ordered_parallel_map, ordered_parallel_map_threshold, SMALL_BATCH_INLINE,
};

const PARALLELISM: usize = 8;

/// A handful of arithmetic ops per item — the kind of per-file
/// bookkeeping the search fan-out runs on tiny uncovered-file batches,
/// where pool handoff would dwarf the work itself.
fn cheap(i: usize, x: &u64) -> u64 {
    let mut v = *x ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    v ^= v >> 33;
    v = v.wrapping_mul(0xff51_afd7_ed55_8ccd);
    v ^ (v >> 29)
}

fn bench_small_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_small_batch");
    for n in [1usize, 2, 3] {
        assert!(
            n <= SMALL_BATCH_INLINE,
            "series must sit inside the threshold"
        );
        let items: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::new("inline", n), &items, |b, it| {
            b.iter(|| ordered_parallel_map(PARALLELISM, it, cheap))
        });
        group.bench_with_input(BenchmarkId::new("forced_pool", n), &items, |b, it| {
            b.iter(|| ordered_parallel_map_threshold(PARALLELISM, 0, it, cheap))
        });
    }
    group.finish();
}

fn bench_large_batch(c: &mut Criterion) {
    // Past the threshold the pool pays for itself: 64 items of a few
    // microseconds each (a decoded block's worth of byte crunching).
    let blocks: Vec<Vec<u8>> = (0..64usize)
        .map(|i| (0..4096).map(|j| ((i * 31 + j) % 251) as u8).collect())
        .collect();
    let crunch = |_: usize, block: &Vec<u8>| -> u64 {
        block.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        })
    };
    let mut group = c.benchmark_group("pool_large_batch");
    group.throughput(Throughput::Bytes((blocks.len() * 4096) as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| ordered_parallel_map(1, &blocks, crunch))
    });
    group.bench_function("pooled", |b| {
        b.iter(|| ordered_parallel_map(PARALLELISM, &blocks, crunch))
    });
    group.finish();
}

criterion_group!(benches, bench_small_batch, bench_large_batch);
criterion_main!(benches);
