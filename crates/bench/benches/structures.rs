//! Criterion microbenchmarks: index data structures (SA-IS, wavelet matrix,
//! trie build, k-means / PQ).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rottnest_fm::sais::suffix_array;
use rottnest_fm::wavelet::WaveletMatrix;
use rottnest_ivfpq::kmeans::kmeans;
use rottnest_ivfpq::pq::ProductQuantizer;
use rottnest_trie::{Posting, TrieBuilder};

fn bench_sais(c: &mut Criterion) {
    let mut group = c.benchmark_group("sais");
    for size in [64 << 10, 512 << 10] {
        let mut wl = rottnest_workloads::TextWorkload::new(1, 20_000, 80);
        let mut text = Vec::with_capacity(size);
        while text.len() < size {
            text.extend_from_slice(wl.doc().as_bytes());
            text.push(b' ');
        }
        text.truncate(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &text, |b, t| {
            b.iter(|| suffix_array(t))
        });
    }
    group.finish();
}

fn bench_wavelet(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let symbols: Vec<u8> = (0..1 << 16).map(|_| rng.gen()).collect();
    c.bench_function("wavelet/build_64k", |b| {
        b.iter(|| WaveletMatrix::build(&symbols))
    });
    let wm = WaveletMatrix::build(&symbols);
    c.bench_function("wavelet/rank_1k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..1000 {
                acc += wm.rank((i % 256) as u8, (i * 61) % symbols.len());
            }
            acc
        })
    });
}

fn bench_trie_build(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let keys: Vec<Vec<u8>> = (0..50_000)
        .map(|_| (0..16).map(|_| rng.gen()).collect())
        .collect();
    c.bench_function("trie/build_50k_keys", |b| {
        b.iter(|| {
            let mut t = TrieBuilder::new(16).unwrap();
            for (i, k) in keys.iter().enumerate() {
                t.add(k, Posting::new(0, i as u32)).unwrap();
            }
            t.finish()
        })
    });
}

fn bench_kmeans_pq(c: &mut Criterion) {
    let mut wl = rottnest_workloads::VectorWorkload::new(4, 32, 16, 0.5);
    let data: Vec<f32> = wl.vectors(10_000).into_iter().flatten().collect();
    c.bench_function("kmeans/10k_x32d_k64", |b| {
        b.iter(|| kmeans(&data, 32, 64, 4, 7))
    });
    let pq = ProductQuantizer::train(&data, 32, 8, 4, 7).unwrap();
    let query: Vec<f32> = data[..32].to_vec();
    let codes: Vec<Vec<u8>> = (0..1000)
        .map(|i| pq.encode(&data[i * 32..(i + 1) * 32]))
        .collect();
    c.bench_function("pq/adc_scan_1k", |b| {
        b.iter(|| {
            let table = pq.adc_table(&query);
            codes
                .iter()
                .map(|code| pq.adc_distance(&table, code))
                .sum::<f32>()
        })
    });
}

criterion_group!(
    benches,
    bench_sais,
    bench_wavelet,
    bench_trie_build,
    bench_kmeans_pq
);
criterion_main!(benches);
