//! Criterion microbenchmarks: compression codec and integer coding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rottnest_compress::{bitpack, lz, varint};

fn text_payload(n: usize) -> Vec<u8> {
    let mut wl = rottnest_workloads::TextWorkload::new(3, 10_000, 100);
    let mut out = Vec::with_capacity(n + 1024);
    while out.len() < n {
        out.extend_from_slice(wl.doc().as_bytes());
        out.push(b' ');
    }
    out.truncate(n);
    out
}

fn bench_lz(c: &mut Criterion) {
    let mut group = c.benchmark_group("lz");
    for size in [64 << 10, 1 << 20] {
        let data = text_payload(size);
        let compressed = lz::compress(&data);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("compress_text", size), &data, |b, d| {
            b.iter(|| lz::compress(d))
        });
        group.bench_with_input(
            BenchmarkId::new("decompress_text", size),
            &compressed,
            |b, d| b.iter(|| lz::decompress(d, size).unwrap()),
        );
    }
    group.finish();
}

fn bench_varint(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let values: Vec<u64> = (0..10_000).map(|_| rng.gen_range(0..1u64 << 40)).collect();
    c.bench_function("varint/encode_10k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(60_000);
            for &v in &values {
                varint::write_u64(&mut buf, v);
            }
            buf
        })
    });
    let mut buf = Vec::new();
    for &v in &values {
        varint::write_u64(&mut buf, v);
    }
    c.bench_function("varint/decode_10k", |b| {
        b.iter(|| {
            let mut pos = 0;
            let mut sum = 0u64;
            for _ in 0..values.len() {
                sum = sum.wrapping_add(varint::read_u64(&buf, &mut pos).unwrap());
            }
            sum
        })
    });
}

fn bench_bitpack(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let mut values: Vec<u64> = (0..10_000).map(|_| rng.gen_range(0..1u64 << 24)).collect();
    values.sort_unstable();
    c.bench_function("bitpack/pack_sorted_10k", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            bitpack::pack_sorted(&mut buf, &values);
            buf
        })
    });
    let mut buf = Vec::new();
    bitpack::pack_sorted(&mut buf, &values);
    c.bench_function("bitpack/unpack_sorted_10k", |b| {
        b.iter(|| {
            let mut pos = 0;
            bitpack::unpack_sorted(&buf, &mut pos).unwrap()
        })
    });
}

criterion_group!(benches, bench_lz, bench_varint, bench_bitpack);
criterion_main!(benches);
