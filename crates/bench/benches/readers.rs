//! Criterion microbenchmarks: the two Parquet read paths (Figure 5) and
//! component-file access.

use criterion::{criterion_group, criterion_main, Criterion};
use rottnest_component::{ComponentFile, ComponentWriter};
use rottnest_format::{
    page_table::PageTable, ChunkReader, ColumnData, DataType, Field, FileWriter, PageReader,
    RecordBatch, Schema, WriterOptions,
};
use rottnest_object_store::{MemoryStore, ObjectStore};

fn build_file(store: &dyn ObjectStore) -> PageTable {
    let schema = Schema::new(vec![Field::new("body", DataType::Utf8)]);
    let mut wl = rottnest_workloads::TextWorkload::new(8, 10_000, 80);
    let docs = wl.docs(3_000);
    let batch = RecordBatch::new(schema.clone(), vec![ColumnData::from_strings(&docs)]).unwrap();
    let mut writer = FileWriter::with_options(
        schema,
        WriterOptions {
            page_raw_bytes: 64 << 10,
            ..Default::default()
        },
    );
    writer.write_batch(&batch).unwrap();
    let meta = writer.finish_into(store, "bench.lkpq").unwrap();
    PageTable::from_meta(&meta, 0).unwrap()
}

fn bench_read_paths(c: &mut Criterion) {
    let store = MemoryStore::unmetered();
    let table = build_file(store.as_ref());

    c.bench_function("reader/chunk_full_column", |b| {
        b.iter(|| {
            let reader = ChunkReader::open(store.as_ref(), "bench.lkpq").unwrap();
            reader.read_column(0).unwrap().len()
        })
    });

    let reader = PageReader::new(store.as_ref());
    c.bench_function("reader/single_page", |b| {
        b.iter(|| {
            reader
                .read_page("bench.lkpq", &table, table.len() / 2, DataType::Utf8)
                .unwrap()
                .len()
        })
    });

    c.bench_function("reader/batched_8_pages", |b| {
        let reqs: Vec<(&str, &PageTable, usize)> = (0..8.min(table.len()))
            .map(|i| ("bench.lkpq", &table, i))
            .collect();
        b.iter(|| reader.read_pages(&reqs, DataType::Utf8).unwrap().len())
    });
}

fn bench_components(c: &mut Criterion) {
    let store = MemoryStore::unmetered();
    let mut w = ComponentWriter::new();
    let mut wl = rottnest_workloads::TextWorkload::new(9, 5_000, 200);
    for _ in 0..64 {
        w.add(wl.doc().into_bytes());
    }
    w.finish_into(store.as_ref(), "bench.idx").unwrap();

    c.bench_function("component/open", |b| {
        b.iter(|| {
            ComponentFile::open(store.as_ref(), "bench.idx")
                .unwrap()
                .len()
        })
    });
    c.bench_function("component/open_and_fetch_8", |b| {
        b.iter(|| {
            let f = ComponentFile::open(store.as_ref(), "bench.idx").unwrap();
            f.components(&[1, 9, 17, 25, 33, 41, 49, 57]).unwrap().len()
        })
    });
}

criterion_group!(benches, bench_read_paths, bench_components);
criterion_main!(benches);
