//! Fixed-width bit packing for integer arrays.
//!
//! Posting lists and offset directories store many small integers; packing
//! them at the minimal bit width keeps Rottnest index components compact,
//! which directly reduces the object-store bytes a query must fetch (the
//! `cpq_r` term of the TCO model).

use crate::varint;
use crate::CompressError;

/// Returns the number of bits needed to represent `v` (0 needs 0 bits).
#[inline]
pub fn bits_for(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Packs `values` at the minimal fixed width, prefixed by `[count, width]`
/// varints, and appends the encoding to `out`.
pub fn pack(out: &mut Vec<u8>, values: &[u64]) {
    let width = values.iter().copied().map(bits_for).max().unwrap_or(0);
    varint::write_usize(out, values.len());
    varint::write_u64(out, u64::from(width));
    if width == 0 {
        return;
    }
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for &v in values {
        debug_assert!(bits_for(v) <= width);
        acc |= v << acc_bits;
        let fit = 64 - acc_bits;
        if width >= fit {
            // The value straddles the accumulator boundary.
            out.extend_from_slice(&acc.to_le_bytes());
            acc = if fit == 64 { 0 } else { v >> fit };
            acc_bits = width - fit;
        } else {
            acc_bits += width;
        }
    }
    if acc_bits > 0 {
        let bytes = acc_bits.div_ceil(8) as usize;
        out.extend_from_slice(&acc.to_le_bytes()[..bytes]);
    }
}

/// Decodes an array packed with [`pack`], advancing `pos`.
pub fn unpack(buf: &[u8], pos: &mut usize) -> Result<Vec<u64>, CompressError> {
    let count = varint::read_usize(buf, pos)?;
    let width = varint::read_u64(buf, pos)? as u32;
    if width == 0 {
        return Ok(vec![0; count]);
    }
    if width > 64 {
        return Err(CompressError::Corrupt("bit width exceeds 64"));
    }
    let total_bits = (count as u64) * u64::from(width);
    let total_bytes = usize::try_from(total_bits.div_ceil(8))
        .map_err(|_| CompressError::Corrupt("bitpack length overflow"))?;
    let end = pos
        .checked_add(total_bytes)
        .ok_or(CompressError::Corrupt("bitpack length overflow"))?;
    if end > buf.len() {
        return Err(CompressError::Corrupt("bitpacked data truncated"));
    }
    let data = &buf[*pos..end];
    *pos = end;

    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut values = Vec::with_capacity(count);
    let mut bit_pos: u64 = 0;
    for _ in 0..count {
        let byte = (bit_pos / 8) as usize;
        let shift = (bit_pos % 8) as u32;
        // Read up to 16 bytes so any 64-bit value at any shift is covered.
        let mut window = [0u8; 16];
        let avail = (data.len() - byte).min(16);
        window[..avail].copy_from_slice(&data[byte..byte + avail]);
        let lo = u64::from_le_bytes(window[..8].try_into().unwrap());
        let hi = u64::from_le_bytes(window[8..].try_into().unwrap());
        let v = if shift == 0 {
            lo
        } else {
            (lo >> shift) | (hi << (64 - shift))
        };
        values.push(v & mask);
        bit_pos += u64::from(width);
    }
    Ok(values)
}

/// Delta-encodes a non-decreasing sequence then bit packs the gaps.
///
/// Returns an error at decode time if the sequence was not sorted.
pub fn pack_sorted(out: &mut Vec<u8>, values: &[u64]) {
    debug_assert!(values.windows(2).all(|w| w[0] <= w[1]));
    // The first (absolute) value would dominate the fixed width, so it is
    // written as a varint and only the gaps are packed.
    varint::write_usize(out, values.len());
    if values.is_empty() {
        return;
    }
    varint::write_u64(out, values[0]);
    let gaps: Vec<u64> = values.windows(2).map(|w| w[1] - w[0]).collect();
    pack(out, &gaps);
}

/// Decodes a sequence written by [`pack_sorted`].
pub fn unpack_sorted(buf: &[u8], pos: &mut usize) -> Result<Vec<u64>, CompressError> {
    let count = varint::read_usize(buf, pos)?;
    if count == 0 {
        return Ok(Vec::new());
    }
    let first = varint::read_u64(buf, pos)?;
    let gaps = unpack(buf, pos)?;
    if gaps.len() + 1 != count {
        return Err(CompressError::Corrupt("sorted sequence count mismatch"));
    }
    let mut values = Vec::with_capacity(count);
    let mut acc = first;
    values.push(acc);
    for g in gaps {
        acc = acc
            .checked_add(g)
            .ok_or(CompressError::Corrupt("sorted sequence overflow"))?;
        values.push(acc);
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_for_edges() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn empty_and_zero_arrays() {
        for values in [vec![], vec![0u64, 0, 0]] {
            let mut buf = Vec::new();
            pack(&mut buf, &values);
            let mut pos = 0;
            assert_eq!(unpack(&buf, &mut pos).unwrap(), values);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn width_64_values() {
        let values = vec![u64::MAX, 0, u64::MAX - 1, 42];
        let mut buf = Vec::new();
        pack(&mut buf, &values);
        let mut pos = 0;
        assert_eq!(unpack(&buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn truncation_detected() {
        let values = vec![1000u64; 100];
        let mut buf = Vec::new();
        pack(&mut buf, &values);
        let mut pos = 0;
        assert!(unpack(&buf[..buf.len() - 1], &mut pos).is_err());
    }

    #[test]
    fn sorted_packing_is_smaller_for_dense_sequences() {
        let values: Vec<u64> = (0..1000u64).map(|i| 1_000_000 + i * 3).collect();
        let mut plain = Vec::new();
        pack(&mut plain, &values);
        let mut delta = Vec::new();
        pack_sorted(&mut delta, &values);
        assert!(delta.len() < plain.len() / 4);
        let mut pos = 0;
        assert_eq!(unpack_sorted(&delta, &mut pos).unwrap(), values);
    }

    proptest! {
        #[test]
        fn prop_pack_round_trip(values in proptest::collection::vec(any::<u64>(), 0..300)) {
            let mut buf = Vec::new();
            pack(&mut buf, &values);
            let mut pos = 0;
            prop_assert_eq!(unpack(&buf, &mut pos).unwrap(), values);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn prop_small_width_round_trip(values in proptest::collection::vec(0u64..16, 0..300)) {
            let mut buf = Vec::new();
            pack(&mut buf, &values);
            let mut pos = 0;
            prop_assert_eq!(unpack(&buf, &mut pos).unwrap(), values);
        }

        #[test]
        fn prop_sorted_round_trip(mut values in proptest::collection::vec(any::<u32>(), 0..300)) {
            values.sort_unstable();
            let values: Vec<u64> = values.into_iter().map(u64::from).collect();
            let mut buf = Vec::new();
            pack_sorted(&mut buf, &values);
            let mut pos = 0;
            prop_assert_eq!(unpack_sorted(&buf, &mut pos).unwrap(), values);
        }
    }
}
