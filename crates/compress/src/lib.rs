//! Compression and integer-coding primitives shared by Rottnest's columnar
//! file format (`rottnest-format`) and componentized index files
//! (`rottnest-component`).
//!
//! The crate provides:
//!
//! * [`varint`] — LEB128 variable-length integers and zigzag coding, used by
//!   every hand-written on-disk encoding in the workspace.
//! * [`bitpack`] — fixed-width bit packing for posting lists and offset
//!   arrays.
//! * [`lz`] — a from-scratch LZ77-family block codec with hash-chain match
//!   finding (an LZ4-like token format), the default codec for data pages and
//!   index components.
//! * [`Codec`] — the codec registry used in page headers and component
//!   directories.
//!
//! All encodings are deterministic: the same input bytes always produce the
//! same output bytes, which the higher layers rely on for idempotent index
//! builds.

pub mod bitpack;
pub mod lz;
pub mod varint;

/// Identifies a compression codec in on-disk headers.
///
/// The numeric discriminants are part of the on-disk format and must never be
/// reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Codec {
    /// Bytes stored verbatim.
    None = 0,
    /// The LZ block codec from [`lz`].
    Lz = 1,
}

impl Codec {
    /// Decodes a codec id from an on-disk byte.
    pub fn from_u8(v: u8) -> Result<Self, CompressError> {
        match v {
            0 => Ok(Codec::None),
            1 => Ok(Codec::Lz),
            other => Err(CompressError::UnknownCodec(other)),
        }
    }

    /// Compresses `input`, returning the encoded payload (without framing).
    pub fn compress(self, input: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => input.to_vec(),
            Codec::Lz => lz::compress(input),
        }
    }

    /// Decompresses a payload produced by [`Codec::compress`].
    ///
    /// `uncompressed_len` must be the exact original length; it is carried in
    /// the surrounding header by every caller in the workspace.
    pub fn decompress(
        self,
        input: &[u8],
        uncompressed_len: usize,
    ) -> Result<Vec<u8>, CompressError> {
        match self {
            Codec::None => {
                if input.len() != uncompressed_len {
                    return Err(CompressError::Corrupt("raw length mismatch"));
                }
                Ok(input.to_vec())
            }
            Codec::Lz => lz::decompress(input, uncompressed_len),
        }
    }
}

/// Errors produced while decoding compressed payloads or integer streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The payload does not decode to a well-formed stream.
    Corrupt(&'static str),
    /// Header referenced a codec id this build does not know.
    UnknownCodec(u8),
    /// A varint ran past the end of the buffer or exceeded 64 bits.
    Varint(&'static str),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Corrupt(m) => write!(f, "corrupt compressed data: {m}"),
            CompressError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            CompressError::Varint(m) => write!(f, "invalid varint: {m}"),
        }
    }
}

impl std::error::Error for CompressError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_ids_round_trip() {
        for codec in [Codec::None, Codec::Lz] {
            assert_eq!(Codec::from_u8(codec as u8).unwrap(), codec);
        }
        assert!(Codec::from_u8(200).is_err());
    }

    #[test]
    fn none_codec_checks_length() {
        let data = b"abc".to_vec();
        let enc = Codec::None.compress(&data);
        assert_eq!(Codec::None.decompress(&enc, 3).unwrap(), data);
        assert!(Codec::None.decompress(&enc, 4).is_err());
    }

    #[test]
    fn lz_codec_round_trips_repetitive_data() {
        let data: Vec<u8> = b"rottnest indexes data lakes for search. "
            .iter()
            .cycle()
            .take(10_000)
            .copied()
            .collect();
        let enc = Codec::Lz.compress(&data);
        assert!(enc.len() < data.len() / 4, "repetitive data should shrink");
        assert_eq!(Codec::Lz.decompress(&enc, data.len()).unwrap(), data);
    }
}
