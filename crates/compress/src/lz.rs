//! A from-scratch LZ77 block codec with an LZ4-style token format.
//!
//! Rottnest compresses both data pages and index components (§V-B of the
//! paper: "Compression significantly reduces both storage costs and read
//! amplification, with IO savings typically outweighing decompression
//! overhead"). We implement the codec ourselves instead of pulling in a
//! compression crate so the whole storage stack is self-contained.
//!
//! ## Format
//!
//! A compressed block is a sequence of *sequences*. Each sequence is:
//!
//! ```text
//! [token: u8] [extra literal-length bytes] [literals]
//!             [offset: u16 LE] [extra match-length bytes]
//! ```
//!
//! The token's high nibble is the literal count (15 = more bytes follow, 255
//! continuation), and its low nibble is `match_len - MIN_MATCH` with the same
//! extension scheme. The final sequence carries literals only and omits the
//! offset/match fields. Matches reference up to 64 KiB back.

use crate::CompressError;

/// Minimum match length worth encoding; shorter repeats stay literal.
const MIN_MATCH: usize = 4;
/// Maximum backwards distance representable by the 16-bit offset.
const MAX_OFFSET: usize = 65_535;
/// Size (log2) of the match-finder hash table.
const HASH_BITS: u32 = 16;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn write_len(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

#[inline]
fn read_len(buf: &[u8], pos: &mut usize, nibble: usize) -> Result<usize, CompressError> {
    let mut len = nibble;
    if nibble == 15 {
        loop {
            let b = *buf
                .get(*pos)
                .ok_or(CompressError::Corrupt("length extension truncated"))?;
            *pos += 1;
            len += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(len)
}

/// Compresses `input` into a standalone LZ block.
///
/// Incompressible data expands by at most ~0.5%; callers that care (the page
/// writer, the component writer) compare lengths and fall back to
/// [`crate::Codec::None`].
pub fn compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH + 1 {
        emit_sequence(&mut out, input, None);
        return out;
    }

    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut i = 0usize;
    // Leave room so the 4-byte hash read and match extension stay in bounds.
    let search_end = n - MIN_MATCH;

    while i <= search_end {
        let h = hash4(&input[i..]);
        let candidate = table[h];
        table[h] = i;

        let is_match = candidate != usize::MAX
            && i - candidate <= MAX_OFFSET
            && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH];
        if !is_match {
            i += 1;
            continue;
        }

        // Extend the match as far as possible.
        let mut len = MIN_MATCH;
        while i + len < n && input[candidate + len] == input[i + len] {
            len += 1;
        }
        let offset = (i - candidate) as u16;
        emit_sequence(&mut out, &input[literal_start..i], Some((offset, len)));

        // Insert a few positions inside the match so later data can
        // reference it, then skip past it.
        let match_end = i + len;
        let insert_to = match_end.min(search_end + 1);
        let mut j = i + 1;
        while j < insert_to {
            table[hash4(&input[j..])] = j;
            j += 1;
        }
        i = match_end;
        literal_start = match_end;
    }

    emit_sequence(&mut out, &input[literal_start..], None);
    out
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(u16, usize)>) {
    let lit_nibble = literals.len().min(15);
    let match_nibble = match m {
        Some((_, len)) => (len - MIN_MATCH).min(15),
        None => 0,
    };
    out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
    if lit_nibble == 15 {
        write_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((offset, len)) = m {
        out.extend_from_slice(&offset.to_le_bytes());
        if match_nibble == 15 {
            write_len(out, len - MIN_MATCH - 15);
        }
    }
}

/// Decompresses a block produced by [`compress`].
///
/// `expected_len` is the exact original size, carried in the enclosing
/// header. Decoding is fully bounds-checked: corrupt input yields an error,
/// never undefined behaviour or a wrong-sized buffer.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, CompressError> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    let mut pos = 0usize;

    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        let lit_len = read_len(input, &mut pos, (token >> 4) as usize)?;
        let lit_end = pos
            .checked_add(lit_len)
            .ok_or(CompressError::Corrupt("literal length overflow"))?;
        if lit_end > input.len() {
            return Err(CompressError::Corrupt("literals truncated"));
        }
        out.extend_from_slice(&input[pos..lit_end]);
        pos = lit_end;

        if pos == input.len() {
            break; // Final literal-only sequence.
        }

        if pos + 2 > input.len() {
            return Err(CompressError::Corrupt("offset truncated"));
        }
        let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(CompressError::Corrupt("match offset out of range"));
        }
        let match_len = read_len(input, &mut pos, (token & 0x0f) as usize)? + MIN_MATCH;
        if out.len() + match_len > expected_len {
            return Err(CompressError::Corrupt("output exceeds expected length"));
        }
        // Byte-by-byte copy: matches may overlap their own output
        // (offset < match_len encodes a run).
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }

    if out.len() != expected_len {
        return Err(CompressError::Corrupt("output shorter than expected"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn round_trip(data: &[u8]) {
        let enc = compress(data);
        let dec = decompress(&enc, data.len()).expect("decompress");
        assert_eq!(dec, data);
    }

    #[test]
    fn empty_input() {
        round_trip(b"");
    }

    #[test]
    fn tiny_inputs() {
        for n in 1..=8 {
            round_trip(&vec![7u8; n]);
        }
    }

    #[test]
    fn long_run_compresses_well() {
        let data = vec![42u8; 100_000];
        let enc = compress(&data);
        assert!(enc.len() < 600, "run of 100k bytes got {} bytes", enc.len());
        round_trip(&data);
    }

    #[test]
    fn overlapping_match_run() {
        // "abcabcabc..." exercises offset < match_len copies.
        let data: Vec<u8> = b"abc".iter().cycle().take(10_000).copied().collect();
        round_trip(&data);
    }

    #[test]
    fn incompressible_random_data_round_trips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..65_536).map(|_| rng.gen()).collect();
        let enc = compress(&data);
        // Random bytes should expand only marginally.
        assert!(enc.len() < data.len() + data.len() / 100 + 64);
        round_trip(&data);
    }

    #[test]
    fn text_like_data_compresses() {
        let text = "the quick brown fox jumps over the lazy dog. ".repeat(500);
        let enc = compress(text.as_bytes());
        assert!(enc.len() < text.len() / 5);
        round_trip(text.as_bytes());
    }

    #[test]
    fn matches_farther_than_window_are_not_used_but_output_is_correct() {
        // A repeated 1 KiB pattern separated by > 64 KiB of random bytes.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let pattern: Vec<u8> = (0..1024).map(|_| rng.gen()).collect();
        let mut data = pattern.clone();
        data.extend((0..70_000).map(|_| rng.gen::<u8>()));
        data.extend_from_slice(&pattern);
        round_trip(&data);
    }

    #[test]
    fn corrupt_offset_rejected() {
        let data = b"abcdabcdabcdabcd".to_vec();
        let mut enc = compress(&data);
        // Find and clobber the offset bytes: brute-force flip bytes and make
        // sure nothing panics; errors are acceptable, wrong output is not.
        for i in 0..enc.len() {
            let orig = enc[i];
            enc[i] = orig.wrapping_add(0x80);
            if let Ok(out) = decompress(&enc, data.len()) {
                assert_eq!(out.len(), data.len())
            }
            enc[i] = orig;
        }
    }

    #[test]
    fn wrong_expected_len_rejected() {
        let data = vec![9u8; 1000];
        let enc = compress(&data);
        assert!(decompress(&enc, 999).is_err());
        assert!(decompress(&enc, 1001).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            round_trip(&data);
        }

        #[test]
        fn prop_round_trip_low_entropy(data in proptest::collection::vec(0u8..4, 0..8192)) {
            round_trip(&data);
        }

        #[test]
        fn prop_decompress_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512),
                                        len in 0usize..2048) {
            let _ = decompress(&data, len);
        }
    }
}
