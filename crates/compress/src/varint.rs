//! LEB128 variable-length integers and zigzag coding.
//!
//! Every hand-written on-disk structure in the workspace (page headers,
//! component directories, lake log records, trie nodes, posting lists) uses
//! these routines, so they are deliberately small and branch-light.

use crate::CompressError;

/// Appends `v` to `out` as an unsigned LEB128 varint (1..=10 bytes).
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` as a varint; convenience wrapper over [`write_u64`].
#[inline]
pub fn write_usize(out: &mut Vec<u8>, v: usize) {
    write_u64(out, v as u64);
}

/// Appends `v` as a zigzag-coded signed varint.
#[inline]
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag_encode(v));
}

/// Reads an unsigned varint from `buf` starting at `*pos`, advancing `*pos`.
#[inline]
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, CompressError> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or(CompressError::Varint("unexpected end of buffer"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CompressError::Varint("varint overflows u64"));
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if shift > 63 {
            return Err(CompressError::Varint("varint longer than 10 bytes"));
        }
    }
}

/// Reads an unsigned varint and narrows it to `usize`.
#[inline]
pub fn read_usize(buf: &[u8], pos: &mut usize) -> Result<usize, CompressError> {
    let v = read_u64(buf, pos)?;
    usize::try_from(v).map_err(|_| CompressError::Varint("varint exceeds usize"))
}

/// Reads a zigzag-coded signed varint.
#[inline]
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Result<i64, CompressError> {
    Ok(zigzag_decode(read_u64(buf, pos)?))
}

/// Maps a signed integer to an unsigned one so small magnitudes stay small.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a length-prefixed byte slice.
#[inline]
pub fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_usize(out, bytes.len());
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte slice written by [`write_bytes`].
#[inline]
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], CompressError> {
    let len = read_usize(buf, pos)?;
    let end = pos
        .checked_add(len)
        .ok_or(CompressError::Varint("length overflow"))?;
    if end > buf.len() {
        return Err(CompressError::Varint("byte slice runs past buffer"));
    }
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

/// Appends a length-prefixed UTF-8 string.
#[inline]
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_bytes(out, s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string written by [`write_str`].
#[inline]
pub fn read_str(buf: &[u8], pos: &mut usize) -> Result<String, CompressError> {
    let bytes = read_bytes(buf, pos)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| CompressError::Varint("invalid utf-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_edge_values() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MIN)), i64::MIN);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MAX)), i64::MAX);
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(read_u64(&buf[..cut], &mut pos).is_err());
        }
    }

    #[test]
    fn overlong_varint_is_an_error() {
        // 11 continuation bytes can never be valid.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn bytes_and_str_round_trip() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"hello");
        write_str(&mut buf, "rottnest");
        let mut pos = 0;
        assert_eq!(read_bytes(&buf, &mut pos).unwrap(), b"hello");
        assert_eq!(read_str(&buf, &mut pos).unwrap(), "rottnest");
    }

    #[test]
    fn bytes_with_lying_length_is_an_error() {
        let mut buf = Vec::new();
        write_usize(&mut buf, 100);
        buf.extend_from_slice(b"short");
        let mut pos = 0;
        assert!(read_bytes(&buf, &mut pos).is_err());
    }

    proptest! {
        #[test]
        fn prop_u64_round_trip(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn prop_i64_round_trip(v in any::<i64>()) {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }

        #[test]
        fn prop_sequences_round_trip(values in proptest::collection::vec(any::<u64>(), 0..64)) {
            let mut buf = Vec::new();
            for &v in &values {
                write_u64(&mut buf, v);
            }
            let mut pos = 0;
            for &v in &values {
                prop_assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            }
            prop_assert_eq!(pos, buf.len());
        }
    }
}
