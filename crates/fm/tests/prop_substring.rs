//! Model-based property test: the on-store FM-index must agree exactly with
//! naive substring scanning over arbitrary document sets, including through
//! a merge.

use proptest::prelude::*;
use rottnest_fm::{merge_fm, FmBuilder, FmIndex, FmOptions, MergePolicy, Posting};
use rottnest_object_store::MemoryStore;

/// Documents over a small alphabet so patterns actually occur.
fn docs_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[abcd]{0,24}", 1..40)
}

fn naive_count(docs: &[String], pattern: &[u8]) -> usize {
    docs.iter()
        .map(|d| {
            let b = d.as_bytes();
            if pattern.is_empty() || b.len() < pattern.len() {
                0
            } else {
                b.windows(pattern.len()).filter(|w| *w == pattern).count()
            }
        })
        .sum()
}

fn build(store: &MemoryStore, key: &str, docs: &[String], file: u32) {
    let mut b = FmBuilder::with_options(FmOptions {
        block_size: 128,
        sample_rate: 4,
    });
    for (i, d) in docs.iter().enumerate() {
        b.add_document(Posting::new(file, i as u32), d.as_bytes());
    }
    b.finish_into(store, key).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn count_matches_naive(docs in docs_strategy(), pattern in "[abcd]{1,5}") {
        let store = MemoryStore::unmetered();
        build(&store, "f.idx", &docs, 0);
        let idx = FmIndex::open(store.as_ref(), "f.idx").unwrap();
        prop_assert_eq!(
            idx.count(pattern.as_bytes()).unwrap(),
            naive_count(&docs, pattern.as_bytes()),
            "docs {:?} pattern {:?}", docs, pattern
        );
    }

    #[test]
    fn locate_pages_cover_every_occurrence(docs in docs_strategy(), pattern in "[abcd]{1,4}") {
        let store = MemoryStore::unmetered();
        build(&store, "f.idx", &docs, 0);
        let idx = FmIndex::open(store.as_ref(), "f.idx").unwrap();
        let hits = idx.locate_pages(pattern.as_bytes(), usize::MAX).unwrap();
        let total: u32 = hits.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(total as usize, naive_count(&docs, pattern.as_bytes()));
        // Every posting named must belong to a document containing the
        // pattern… at page granularity each page is one doc here only when
        // postings differ per doc; verify pages have ≥1 occurrence.
        for (p, _) in hits {
            let d = &docs[p.page as usize];
            prop_assert!(
                naive_count(std::slice::from_ref(d), pattern.as_bytes()) > 0,
                "page {} has no occurrence of {:?}", p.page, pattern
            );
        }
    }

    #[test]
    fn merged_count_equals_sum(
        a in docs_strategy(),
        b in docs_strategy(),
        pattern in "[abcd]{1,4}",
    ) {
        let store = MemoryStore::unmetered();
        build(&store, "a.idx", &a, 0);
        build(&store, "b.idx", &b, 1);
        let ia = FmIndex::open(store.as_ref(), "a.idx").unwrap();
        let ib = FmIndex::open(store.as_ref(), "b.idx").unwrap();
        let policy = MergePolicy {
            options: FmOptions { block_size: 128, sample_rate: 4 },
            ..Default::default()
        };
        merge_fm(store.as_ref(), &[(&ia, 0), (&ib, 0)], "m.idx", &policy).unwrap();
        let m = FmIndex::open(store.as_ref(), "m.idx").unwrap();
        prop_assert_eq!(
            m.count(pattern.as_bytes()).unwrap(),
            naive_count(&a, pattern.as_bytes()) + naive_count(&b, pattern.as_bytes())
        );
    }
}
