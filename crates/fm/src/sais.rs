//! SA-IS: linear-time suffix array construction by induced sorting
//! (Nong, Zhang & Chan, 2009). Built from scratch — this is the foundation
//! of the FM-index's Burrows-Wheeler transform.
//!
//! The public entry point appends the unique smallest sentinel internally,
//! so callers pass raw text; the returned suffix array covers `text + [0]`
//! (length `n + 1`, `sa[0] == n`). Input bytes must therefore be non-zero —
//! the FM builder sanitizes text before calling.

/// Builds the suffix array of `text + [sentinel 0]`.
///
/// Panics in debug builds if `text` contains a zero byte.
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    debug_assert!(
        !text.contains(&0),
        "text must not contain the sentinel byte"
    );
    let mut s: Vec<u32> = Vec::with_capacity(text.len() + 1);
    s.extend(text.iter().map(|&b| u32::from(b)));
    s.push(0);
    let mut sa = vec![u32::MAX; s.len()];
    sais(&s, &mut sa, 257);
    sa
}

/// Core recursive SA-IS over an integer alphabet `0..k`. `s` must end with
/// a unique smallest sentinel (value 0, appearing exactly once, at the end).
fn sais(s: &[u32], sa: &mut [u32], k: usize) {
    let n = s.len();
    if n == 1 {
        sa[0] = 0;
        return;
    }
    if n == 2 {
        // s = [x, 0] with x > 0.
        sa[0] = 1;
        sa[1] = 0;
        return;
    }

    // 1. Classify suffixes: S-type (true) or L-type (false).
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    // 2. Bucket boundaries by symbol.
    let mut bucket_sizes = vec![0u32; k];
    for &c in s {
        bucket_sizes[c as usize] += 1;
    }
    let bucket_heads = |sizes: &[u32]| {
        let mut heads = vec![0u32; k];
        let mut sum = 0u32;
        for (h, &sz) in heads.iter_mut().zip(sizes) {
            *h = sum;
            sum += sz;
        }
        heads
    };
    let bucket_tails = |sizes: &[u32]| {
        let mut tails = vec![0u32; k];
        let mut sum = 0u32;
        for (t, &sz) in tails.iter_mut().zip(sizes) {
            sum += sz;
            *t = sum;
        }
        tails
    };

    let induce = |sa: &mut [u32], lms_only_seeded: bool| {
        let _ = lms_only_seeded;
        // Induce L-type from left to right.
        let mut heads = bucket_heads(&bucket_sizes);
        for i in 0..n {
            let j = sa[i];
            if j == u32::MAX || j == 0 {
                continue;
            }
            let p = (j - 1) as usize;
            if !is_s[p] {
                let c = s[p] as usize;
                sa[heads[c] as usize] = p as u32;
                heads[c] += 1;
            }
        }
        // Induce S-type from right to left.
        let mut tails = bucket_tails(&bucket_sizes);
        for i in (0..n).rev() {
            let j = sa[i];
            if j == u32::MAX || j == 0 {
                continue;
            }
            let p = (j - 1) as usize;
            if is_s[p] {
                let c = s[p] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = p as u32;
            }
        }
    };

    // 3. First pass: place LMS suffixes at bucket tails, induce.
    sa.fill(u32::MAX);
    {
        let mut tails = bucket_tails(&bucket_sizes);
        for i in (0..n).rev() {
            if is_lms(i) {
                let c = s[i] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = i as u32;
            }
        }
    }
    induce(sa, true);

    // 4. Compact sorted LMS substrings and name them.
    let mut lms_order: Vec<u32> = sa
        .iter()
        .copied()
        .filter(|&j| j != u32::MAX && is_lms(j as usize))
        .collect();
    let n_lms = lms_order.len();

    // Name LMS substrings by comparing neighbors in sorted order.
    let mut names = vec![u32::MAX; n];
    let mut current_name: u32 = 0;
    let lms_substring_end = |start: usize| {
        // The LMS substring runs to the next LMS position inclusive.
        let mut j = start + 1;
        while j < n && !is_lms(j) {
            j += 1;
        }
        j.min(n - 1)
    };
    let mut prev: Option<usize> = None;
    for &j in &lms_order {
        let j = j as usize;
        let equal = match prev {
            None => false,
            Some(p) => {
                let (pe, je) = (lms_substring_end(p), lms_substring_end(j));
                pe - p == je - j && s[p..=pe] == s[j..=je] && {
                    // Type pattern must also match; symbols equal across the
                    // same range implies identical classification, so symbol
                    // equality suffices.
                    true
                }
            }
        };
        if !equal {
            current_name += 1;
        }
        names[j] = current_name - 1;
        prev = Some(j);
    }

    // 5. Recurse if names are not yet unique.
    let lms_positions: Vec<u32> = (0..n).filter(|&i| is_lms(i)).map(|i| i as u32).collect();
    if (current_name as usize) < n_lms {
        let s1: Vec<u32> = lms_positions.iter().map(|&p| names[p as usize]).collect();
        let mut sa1 = vec![u32::MAX; s1.len()];
        sais(&s1, &mut sa1, current_name as usize);
        for (rank, &idx) in sa1.iter().enumerate() {
            lms_order[rank] = lms_positions[idx as usize];
        }
    } else {
        // Names unique: order LMS suffixes directly by name.
        for &p in &lms_positions {
            lms_order[names[p as usize] as usize] = p;
        }
    }

    // 6. Final pass: place LMS suffixes in their true order, induce.
    sa.fill(u32::MAX);
    {
        let mut tails = bucket_tails(&bucket_sizes);
        for &j in lms_order.iter().rev() {
            let c = s[j as usize] as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = j;
        }
    }
    induce(sa, false);
}

/// Reference implementation: O(n² log n) comparison sort, used by tests.
#[cfg(test)]
pub fn naive_suffix_array(text: &[u8]) -> Vec<u32> {
    let mut t = text.to_vec();
    t.push(0);
    let mut idx: Vec<u32> = (0..t.len() as u32).collect();
    idx.sort_by(|&a, &b| t[a as usize..].cmp(&t[b as usize..]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn check(text: &[u8]) {
        assert_eq!(
            suffix_array(text),
            naive_suffix_array(text),
            "text {text:?}"
        );
    }

    #[test]
    fn classic_examples() {
        check(b"banana");
        check(b"mississippi");
        check(b"abracadabra");
        check(b"");
        check(b"a");
        check(b"aaaaaaa");
        check(b"abababab");
        check(b"zyxwv");
    }

    #[test]
    fn lms_heavy_patterns() {
        check(b"cabbage");
        check(b"baabaabac");
        check(b"GTCCCGATGTCATGTCAGGA");
        check(&[2, 1, 2, 1, 2, 1, 1, 2, 2]);
    }

    #[test]
    fn random_small_alphabet() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n = rng.gen_range(1..200);
            let text: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4u8)).collect();
            check(&text);
        }
    }

    #[test]
    fn random_full_alphabet() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..30 {
            let n = rng.gen_range(1..500);
            let text: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=255u8)).collect();
            check(&text);
        }
    }

    #[test]
    fn larger_text_is_a_permutation_and_sorted() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let text: Vec<u8> = (0..100_000)
            .map(|_| b"abcdefgh "[rng.gen_range(0..9usize)])
            .map(|b| if b == b' ' { b' ' } else { b })
            .collect();
        let sa = suffix_array(&text);
        assert_eq!(sa.len(), text.len() + 1);
        assert_eq!(sa[0] as usize, text.len(), "sentinel suffix sorts first");
        // Permutation check.
        let mut seen = vec![false; sa.len()];
        for &v in &sa {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        // Spot-check sortedness on a stride.
        let mut t = text.clone();
        t.push(0);
        for w in sa.windows(2).step_by(997) {
            assert!(t[w[0] as usize..] < t[w[1] as usize..]);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_naive(text in proptest::collection::vec(1u8..=255, 0..300)) {
            check(&text);
        }

        #[test]
        fn prop_matches_naive_tiny_alphabet(text in proptest::collection::vec(1u8..=3, 0..300)) {
            check(&text);
        }
    }
}
