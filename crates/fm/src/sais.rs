//! SA-IS: linear-time suffix array construction by induced sorting
//! (Nong, Zhang & Chan, 2009). Built from scratch — this is the foundation
//! of the FM-index's Burrows-Wheeler transform.
//!
//! The public entry point appends the unique smallest sentinel internally,
//! so callers pass raw text; the returned suffix array covers `text + [0]`
//! (length `n + 1`, `sa[0] == n`). Input bytes must therefore be non-zero —
//! the FM builder sanitizes text before calling.
//!
//! ## Workspace
//!
//! All scratch state lives in a [`SaisWorkspace`]: per recursion depth, the
//! suffix-type classification packed 64-per-word (instead of a `Vec<bool>`),
//! an LMS-position bit set derived from it word-parallel, the bucket
//! size/cursor arrays, and the reduced problem's buffers. The workspace is
//! threaded through the recursion, so a single construction performs one
//! buffer growth per depth rather than ~10 allocations per level, and
//! repeated constructions through [`suffix_array`] reuse a thread-local
//! workspace — the allocator drops out of the serial suffix-array phase
//! entirely once the buffers are warm.

use std::cell::RefCell;

/// Reusable SA-IS scratch space. One [`suffix_array_with`] call uses one
/// entry of `levels` per recursion depth; buffers grow to the largest
/// problem seen and are reused verbatim afterwards.
#[derive(Debug, Default)]
pub struct SaisWorkspace {
    levels: Vec<SaisLevel>,
}

/// Scratch buffers for one recursion depth.
#[derive(Debug, Default)]
struct SaisLevel {
    /// S-type classification, bit `i` set ⇔ suffix `i` is S-type.
    types: Vec<u64>,
    /// LMS positions, bit `i` set ⇔ `i` is a left-most S-type position.
    lms: Vec<u64>,
    /// Per-symbol bucket sizes.
    sizes: Vec<u32>,
    /// Bucket cursors (heads or tails) for the current placement pass.
    cursors: Vec<u32>,
    /// LMS substring names, indexed by position (only LMS slots are read).
    names: Vec<u32>,
    /// Sorted LMS suffix order.
    lms_order: Vec<u32>,
    /// LMS positions in text order.
    lms_positions: Vec<u32>,
    /// The reduced problem string and its suffix array.
    s1: Vec<u32>,
    sa1: Vec<u32>,
}

thread_local! {
    static SHARED_WS: RefCell<SaisWorkspace> = RefCell::new(SaisWorkspace::default());
}

/// Builds the suffix array of `text + [sentinel 0]`, reusing a thread-local
/// [`SaisWorkspace`] so repeated builds on the same thread allocate nothing
/// beyond the returned array once the workspace is warm.
///
/// Panics in debug builds if `text` contains a zero byte.
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    SHARED_WS.with(|ws| suffix_array_with(text, &mut ws.borrow_mut()))
}

/// [`suffix_array`] with an explicit workspace (for callers that manage
/// scratch lifetime themselves, e.g. benchmarks).
pub fn suffix_array_with(text: &[u8], ws: &mut SaisWorkspace) -> Vec<u32> {
    debug_assert!(
        !text.contains(&0),
        "text must not contain the sentinel byte"
    );
    let mut s: Vec<u32> = Vec::with_capacity(text.len() + 1);
    s.extend(text.iter().map(|&b| u32::from(b)));
    s.push(0);
    let mut sa = vec![u32::MAX; s.len()];
    sais(&s, &mut sa, 257, ws, 0);
    sa
}

/// Bit `i` of a packed word array.
#[inline]
fn get_bit(bits: &[u64], i: usize) -> bool {
    (bits[i >> 6] >> (i & 63)) & 1 == 1
}

/// First set bit at position ≥ `from`, or `usize::MAX` when none.
#[inline]
fn next_set_bit(bits: &[u64], from: usize) -> usize {
    let mut w = from >> 6;
    if w >= bits.len() {
        return usize::MAX;
    }
    let mut word = bits[w] & (!0u64 << (from & 63));
    loop {
        if word != 0 {
            return (w << 6) + word.trailing_zeros() as usize;
        }
        w += 1;
        if w >= bits.len() {
            return usize::MAX;
        }
        word = bits[w];
    }
}

/// Rebuilds `cursors` as bucket heads (exclusive prefix sums of `sizes`).
fn fill_heads(sizes: &[u32], cursors: &mut Vec<u32>) {
    cursors.clear();
    let mut sum = 0u32;
    cursors.extend(sizes.iter().map(|&sz| {
        let h = sum;
        sum += sz;
        h
    }));
}

/// Rebuilds `cursors` as bucket tails (inclusive prefix sums of `sizes`).
fn fill_tails(sizes: &[u32], cursors: &mut Vec<u32>) {
    cursors.clear();
    let mut sum = 0u32;
    cursors.extend(sizes.iter().map(|&sz| {
        sum += sz;
        sum
    }));
}

/// The two induced-sorting passes: L-type left-to-right from bucket heads,
/// then S-type right-to-left from bucket tails. `cursors` is recycled
/// between the passes.
fn induce(s: &[u32], sa: &mut [u32], types: &[u64], sizes: &[u32], cursors: &mut Vec<u32>) {
    let n = s.len();
    fill_heads(sizes, cursors);
    for i in 0..n {
        let j = sa[i];
        if j == u32::MAX || j == 0 {
            continue;
        }
        let p = (j - 1) as usize;
        if !get_bit(types, p) {
            let c = s[p] as usize;
            sa[cursors[c] as usize] = p as u32;
            cursors[c] += 1;
        }
    }
    fill_tails(sizes, cursors);
    for i in (0..n).rev() {
        let j = sa[i];
        if j == u32::MAX || j == 0 {
            continue;
        }
        let p = (j - 1) as usize;
        if get_bit(types, p) {
            let c = s[p] as usize;
            cursors[c] -= 1;
            sa[cursors[c] as usize] = p as u32;
        }
    }
}

/// Core recursive SA-IS over an integer alphabet `0..k`. `s` must end with
/// a unique smallest sentinel (value 0, appearing exactly once, at the end).
/// `depth` selects this level's scratch buffers in `ws`.
fn sais(s: &[u32], sa: &mut [u32], k: usize, ws: &mut SaisWorkspace, depth: usize) {
    let n = s.len();
    if n == 1 {
        sa[0] = 0;
        return;
    }
    if n == 2 {
        // s = [x, 0] with x > 0.
        sa[0] = 1;
        sa[1] = 0;
        return;
    }

    if ws.levels.len() == depth {
        ws.levels.push(SaisLevel::default());
    }
    let mut lv = std::mem::take(&mut ws.levels[depth]);
    let n_words = n.div_ceil(64);

    // 1. Classify suffixes: S-type (bit set) or L-type, packed 64 per word.
    lv.types.clear();
    lv.types.resize(n_words, 0);
    lv.types[(n - 1) >> 6] |= 1 << ((n - 1) & 63);
    let mut next_s = true;
    for i in (0..n - 1).rev() {
        let cur = s[i] < s[i + 1] || (s[i] == s[i + 1] && next_s);
        if cur {
            lv.types[i >> 6] |= 1 << (i & 63);
        }
        next_s = cur;
    }
    // LMS positions word-parallel: an S bit whose predecessor bit is clear.
    lv.lms.clear();
    lv.lms.resize(n_words, 0);
    let mut carry = 0u64;
    for (w, &t) in lv.types.iter().enumerate() {
        lv.lms[w] = t & !((t << 1) | carry);
        carry = t >> 63;
    }
    lv.lms[0] &= !1; // position 0 is never LMS

    // 2. Bucket sizes by symbol.
    lv.sizes.clear();
    lv.sizes.resize(k, 0);
    for &c in s {
        lv.sizes[c as usize] += 1;
    }

    // 3. First pass: place LMS suffixes at bucket tails, induce.
    sa.fill(u32::MAX);
    fill_tails(&lv.sizes, &mut lv.cursors);
    for w in (0..n_words).rev() {
        let mut word = lv.lms[w];
        while word != 0 {
            let bit = 63 - word.leading_zeros() as usize;
            word &= !(1u64 << bit);
            let i = (w << 6) + bit;
            let c = s[i] as usize;
            lv.cursors[c] -= 1;
            sa[lv.cursors[c] as usize] = i as u32;
        }
    }
    induce(s, sa, &lv.types, &lv.sizes, &mut lv.cursors);

    // 4. Compact sorted LMS substrings and name them.
    lv.lms_order.clear();
    lv.lms_order.extend(
        sa.iter()
            .copied()
            .filter(|&j| j != u32::MAX && get_bit(&lv.lms, j as usize)),
    );
    let n_lms = lv.lms_order.len();

    // Name LMS substrings by comparing neighbors in sorted order. The LMS
    // substring starting at `p` runs to the next LMS position inclusive.
    lv.names.resize(n, 0);
    let lms_end = |start: usize| next_set_bit(&lv.lms, start + 1).min(n - 1);
    let mut current_name: u32 = 0;
    let mut prev: Option<usize> = None;
    for idx in 0..n_lms {
        let j = lv.lms_order[idx] as usize;
        let equal = match prev {
            None => false,
            Some(p) => {
                // Symbols equal across the same range implies identical
                // type classification, so symbol equality suffices.
                let (pe, je) = (lms_end(p), lms_end(j));
                pe - p == je - j && s[p..=pe] == s[j..=je]
            }
        };
        if !equal {
            current_name += 1;
        }
        lv.names[j] = current_name - 1;
        prev = Some(j);
    }

    // LMS positions in text order, collected by word-scanning the bit set.
    lv.lms_positions.clear();
    for w in 0..n_words {
        let mut word = lv.lms[w];
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            word &= word - 1;
            lv.lms_positions.push(((w << 6) + bit) as u32);
        }
    }

    // 5. Recurse if names are not yet unique.
    if (current_name as usize) < n_lms {
        lv.s1.clear();
        lv.s1
            .extend(lv.lms_positions.iter().map(|&p| lv.names[p as usize]));
        lv.sa1.clear();
        lv.sa1.resize(n_lms, u32::MAX);
        // `lv` is detached from `ws`, so the recursion borrows disjoint
        // scratch (the next depth's buffers).
        sais(&lv.s1, &mut lv.sa1, current_name as usize, ws, depth + 1);
        for (rank, &idx) in lv.sa1.iter().enumerate() {
            lv.lms_order[rank] = lv.lms_positions[idx as usize];
        }
    } else {
        // Names unique: order LMS suffixes directly by name.
        for &p in &lv.lms_positions {
            lv.lms_order[lv.names[p as usize] as usize] = p;
        }
    }

    // 6. Final pass: place LMS suffixes in their true order, induce.
    sa.fill(u32::MAX);
    fill_tails(&lv.sizes, &mut lv.cursors);
    for &j in lv.lms_order.iter().rev() {
        let c = s[j as usize] as usize;
        lv.cursors[c] -= 1;
        sa[lv.cursors[c] as usize] = j;
    }
    induce(s, sa, &lv.types, &lv.sizes, &mut lv.cursors);

    ws.levels[depth] = lv;
}

/// Reference implementation: O(n² log n) comparison sort, used by tests.
#[cfg(test)]
pub fn naive_suffix_array(text: &[u8]) -> Vec<u32> {
    let mut t = text.to_vec();
    t.push(0);
    let mut idx: Vec<u32> = (0..t.len() as u32).collect();
    idx.sort_by(|&a, &b| t[a as usize..].cmp(&t[b as usize..]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn check(text: &[u8]) {
        assert_eq!(
            suffix_array(text),
            naive_suffix_array(text),
            "text {text:?}"
        );
    }

    #[test]
    fn classic_examples() {
        check(b"banana");
        check(b"mississippi");
        check(b"abracadabra");
        check(b"");
        check(b"a");
        check(b"aaaaaaa");
        check(b"abababab");
        check(b"zyxwv");
    }

    #[test]
    fn lms_heavy_patterns() {
        check(b"cabbage");
        check(b"baabaabac");
        check(b"GTCCCGATGTCATGTCAGGA");
        check(&[2, 1, 2, 1, 2, 1, 1, 2, 2]);
    }

    #[test]
    fn random_small_alphabet() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n = rng.gen_range(1..200);
            let text: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=4u8)).collect();
            check(&text);
        }
    }

    #[test]
    fn random_full_alphabet() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..30 {
            let n = rng.gen_range(1..500);
            let text: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=255u8)).collect();
            check(&text);
        }
    }

    #[test]
    fn reused_workspace_is_stateless() {
        // One workspace serving many differently-shaped builds must give
        // the same answers as fresh construction every time.
        let mut ws = SaisWorkspace::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        for round in 0..40 {
            let n = rng.gen_range(1..400);
            let alpha = [2u8, 4, 16, 255][round % 4];
            let text: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=alpha)).collect();
            assert_eq!(
                suffix_array_with(&text, &mut ws),
                naive_suffix_array(&text),
                "round {round} text {text:?}"
            );
        }
    }

    #[test]
    fn larger_text_is_a_permutation_and_sorted() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let text: Vec<u8> = (0..100_000)
            .map(|_| b"abcdefgh "[rng.gen_range(0..9usize)])
            .map(|b| if b == b' ' { b' ' } else { b })
            .collect();
        let sa = suffix_array(&text);
        assert_eq!(sa.len(), text.len() + 1);
        assert_eq!(sa[0] as usize, text.len(), "sentinel suffix sorts first");
        // Permutation check.
        let mut seen = vec![false; sa.len()];
        for &v in &sa {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        // Spot-check sortedness on a stride.
        let mut t = text.clone();
        t.push(0);
        for w in sa.windows(2).step_by(997) {
            assert!(t[w[0] as usize..] < t[w[1] as usize..]);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_naive(text in proptest::collection::vec(1u8..=255, 0..300)) {
            check(&text);
        }

        #[test]
        fn prop_matches_naive_tiny_alphabet(text in proptest::collection::vec(1u8..=3, 0..300)) {
            check(&text);
        }
    }
}
