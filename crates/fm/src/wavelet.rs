//! Wavelet matrix over the byte alphabet: `rank(symbol, i)` and `access(i)`
//! in 8 bit-vector operations.
//!
//! Each BWT block is represented by one wavelet matrix, making a block a
//! self-contained component (§V-B): a backward-search step touches at most
//! two blocks, a LF-mapping step exactly one.

use rottnest_compress::varint;

use crate::bitvec::{BitVecBuilder, RankBitVec};
use crate::{FmError, Result};

const LEVELS: usize = 8;

/// A wavelet matrix over `u8` symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveletMatrix {
    len: usize,
    levels: Vec<RankBitVec>,
    /// Zeros per level (partition points).
    zeros: Vec<usize>,
}

impl WaveletMatrix {
    /// Builds from a symbol slice. The two partition buffers are allocated
    /// once up front and recycled across all 8 levels (the partitioned
    /// sequence swaps with the source each round), so construction performs
    /// a constant number of allocations regardless of level count.
    pub fn build(symbols: &[u8]) -> Self {
        let mut current: Vec<u8> = symbols.to_vec();
        let mut next: Vec<u8> = Vec::with_capacity(symbols.len());
        let mut one_part: Vec<u8> = Vec::with_capacity(symbols.len());
        let mut levels = Vec::with_capacity(LEVELS);
        let mut zeros = Vec::with_capacity(LEVELS);

        for level in 0..LEVELS {
            let shift = 7 - level;
            let mut bv = BitVecBuilder::with_capacity(current.len());
            next.clear();
            one_part.clear();
            for &sym in &current {
                let bit = (sym >> shift) & 1 == 1;
                bv.push(bit);
                if bit {
                    one_part.push(sym);
                } else {
                    next.push(sym);
                }
            }
            zeros.push(next.len());
            levels.push(bv.finish());
            next.extend_from_slice(&one_part);
            std::mem::swap(&mut current, &mut next);
        }

        Self {
            len: symbols.len(),
            levels,
            zeros,
        }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The symbol at position `i`.
    pub fn access(&self, mut i: usize) -> u8 {
        debug_assert!(i < self.len);
        let mut sym = 0u8;
        for (level, bv) in self.levels.iter().enumerate() {
            let bit = bv.get(i);
            sym = (sym << 1) | u8::from(bit);
            i = if bit {
                self.zeros[level] + bv.rank1(i)
            } else {
                bv.rank0(i)
            };
        }
        sym
    }

    /// Occurrences of `sym` in `[0, i)`. Exits as soon as the traversal
    /// interval empties — a symbol absent from the prefix stops paying for
    /// the remaining levels instead of descending all 8.
    pub fn rank(&self, sym: u8, i: usize) -> usize {
        debug_assert!(i <= self.len);
        self.rank_tail(sym, 0, 0, i)
    }

    /// Descends `(lo, hi)` along `sym`'s path from `from_level`, returning
    /// the final interval width (= occurrences of `sym` in the original
    /// `[lo, hi)` slice of that level's sequence).
    fn rank_tail(&self, sym: u8, from_level: usize, mut lo: usize, mut hi: usize) -> usize {
        for (level, bv) in self.levels.iter().enumerate().skip(from_level) {
            if lo == hi {
                return 0;
            }
            if (sym >> (7 - level)) & 1 == 1 {
                let z = self.zeros[level];
                lo = z + bv.rank1(lo);
                hi = z + bv.rank1(hi);
            } else {
                lo = bv.rank0(lo);
                hi = bv.rank0(hi);
            }
        }
        hi - lo
    }

    /// Ranks of `sym` at both boundaries of `[start, end)` in one fused
    /// traversal: returns `(rank(sym, start), rank(sym, end))` — exactly
    /// the pair an FM backward-search step needs.
    ///
    /// The three positions (the symbol path's origin plus both boundaries)
    /// share each level's bit-vector descent, so the pair costs 3 rank
    /// operations per level instead of the 4 two independent `rank` calls
    /// pay, with adjacent directory loads. When the boundaries collapse the
    /// descent drops to the two-position tail, and when even the end
    /// boundary meets the path origin the result is pinned at `(0, 0)`
    /// with no further levels touched.
    pub fn rank_range(&self, sym: u8, start: usize, end: usize) -> (usize, usize) {
        debug_assert!(start <= end && end <= self.len);
        let mut path = 0usize;
        let mut a = start;
        let mut b = end;
        for (level, bv) in self.levels.iter().enumerate() {
            if path == b {
                return (0, 0);
            }
            if a == b {
                let r = self.rank_tail(sym, level, path, a);
                return (r, r);
            }
            if (sym >> (7 - level)) & 1 == 1 {
                let z = self.zeros[level];
                path = z + bv.rank1(path);
                a = z + bv.rank1(a);
                b = z + bv.rank1(b);
            } else {
                path = bv.rank0(path);
                a = bv.rank0(a);
                b = bv.rank0(b);
            }
        }
        (a - path, b - path)
    }

    /// Symbol at `i` *and* its rank up to `i` in one traversal — the exact
    /// pair a LF-mapping step needs. Once the interval start catches up
    /// with the position (rank pinned at 0) only the symbol bits remain,
    /// halving the per-level rank work for the rest of the descent.
    pub fn access_and_rank(&self, i: usize) -> (u8, usize) {
        debug_assert!(i < self.len);
        let mut sym = 0u8;
        let mut start = 0usize;
        let mut pos = i;
        for (level, bv) in self.levels.iter().enumerate() {
            let bit = bv.get(pos);
            sym = (sym << 1) | u8::from(bit);
            let pinned = start == pos;
            if bit {
                pos = self.zeros[level] + bv.rank1(pos);
                start = if pinned {
                    pos
                } else {
                    self.zeros[level] + bv.rank1(start)
                };
            } else {
                pos = bv.rank0(pos);
                start = if pinned { pos } else { bv.rank0(start) };
            }
        }
        (sym, pos - start)
    }

    /// Serializes the matrix.
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::write_usize(out, self.len);
        for (bv, &z) in self.levels.iter().zip(&self.zeros) {
            varint::write_usize(out, z);
            bv.encode(out);
        }
    }

    /// Decodes a matrix written by [`WaveletMatrix::encode`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let len = varint::read_usize(buf, pos)?;
        let mut levels = Vec::with_capacity(LEVELS);
        let mut zeros = Vec::with_capacity(LEVELS);
        for _ in 0..LEVELS {
            zeros.push(varint::read_usize(buf, pos)?);
            let bv = RankBitVec::decode(buf, pos)?;
            if bv.len() != len {
                return Err(FmError::Corrupt("wavelet level length mismatch".into()));
            }
            levels.push(bv);
        }
        Ok(Self { len, levels, zeros })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn check_all(symbols: &[u8]) {
        let wm = WaveletMatrix::build(symbols);
        assert_eq!(wm.len(), symbols.len());
        let mut counts = [0usize; 256];
        for (i, &s) in symbols.iter().enumerate() {
            assert_eq!(wm.access(i), s, "access({i})");
            assert_eq!(wm.rank(s, i), counts[s as usize], "rank({s}, {i})");
            let (sym, r) = wm.access_and_rank(i);
            assert_eq!((sym, r), (s, counts[s as usize]));
            counts[s as usize] += 1;
        }
        for s in [0u8, 1, 128, 255] {
            assert_eq!(wm.rank(s, symbols.len()), counts[s as usize]);
        }
        // rank_range must agree with the two independent ranks on a spread
        // of intervals, including empty and absent-symbol ones.
        let n = symbols.len();
        for (start, end) in [(0, n), (0, n / 2), (n / 3, n / 2), (n / 2, n / 2), (n, n)] {
            for s in [0u8, 1, b'a', b'n', 128, 255] {
                assert_eq!(
                    wm.rank_range(s, start, end),
                    (wm.rank(s, start), wm.rank(s, end)),
                    "rank_range({s}, {start}, {end})"
                );
            }
        }
    }

    #[test]
    fn small_cases() {
        check_all(b"");
        check_all(b"a");
        check_all(b"banana");
        check_all(b"mississippi");
        check_all(&[0, 255, 0, 255, 128]);
    }

    #[test]
    fn random_bytes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let symbols: Vec<u8> = (0..3000).map(|_| rng.gen()).collect();
        check_all(&symbols);
    }

    #[test]
    fn skewed_alphabet() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let symbols: Vec<u8> = (0..3000).map(|_| b"ab"[rng.gen_range(0..2usize)]).collect();
        check_all(&symbols);
    }

    #[test]
    fn encode_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let symbols: Vec<u8> = (0..1000).map(|_| rng.gen()).collect();
        let wm = WaveletMatrix::build(&symbols);
        let mut buf = Vec::new();
        wm.encode(&mut buf);
        let mut pos = 0;
        let back = WaveletMatrix::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, wm);
        assert_eq!(pos, buf.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_access_rank_match_naive(symbols in proptest::collection::vec(any::<u8>(), 0..400)) {
            check_all(&symbols);
        }
    }
}
