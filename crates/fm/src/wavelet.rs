//! Wavelet matrix over the byte alphabet: `rank(symbol, i)` and `access(i)`
//! in 8 bit-vector operations.
//!
//! Each BWT block is represented by one wavelet matrix, making a block a
//! self-contained component (§V-B): a backward-search step touches at most
//! two blocks, a LF-mapping step exactly one.

use rottnest_compress::varint;

use crate::bitvec::{BitVecBuilder, RankBitVec};
use crate::{FmError, Result};

const LEVELS: usize = 8;

/// A wavelet matrix over `u8` symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveletMatrix {
    len: usize,
    levels: Vec<RankBitVec>,
    /// Zeros per level (partition points).
    zeros: Vec<usize>,
}

impl WaveletMatrix {
    /// Builds from a symbol slice.
    pub fn build(symbols: &[u8]) -> Self {
        let mut current: Vec<u8> = symbols.to_vec();
        let mut levels = Vec::with_capacity(LEVELS);
        let mut zeros = Vec::with_capacity(LEVELS);

        for level in 0..LEVELS {
            let shift = 7 - level;
            let mut bv = BitVecBuilder::with_capacity(current.len());
            let mut zero_part = Vec::with_capacity(current.len());
            let mut one_part = Vec::new();
            for &sym in &current {
                let bit = (sym >> shift) & 1 == 1;
                bv.push(bit);
                if bit {
                    one_part.push(sym);
                } else {
                    zero_part.push(sym);
                }
            }
            zeros.push(zero_part.len());
            levels.push(bv.finish());
            zero_part.extend_from_slice(&one_part);
            current = zero_part;
        }

        Self {
            len: symbols.len(),
            levels,
            zeros,
        }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The symbol at position `i`.
    pub fn access(&self, mut i: usize) -> u8 {
        debug_assert!(i < self.len);
        let mut sym = 0u8;
        for (level, bv) in self.levels.iter().enumerate() {
            let bit = bv.get(i);
            sym = (sym << 1) | u8::from(bit);
            i = if bit {
                self.zeros[level] + bv.rank1(i)
            } else {
                bv.rank0(i)
            };
        }
        sym
    }

    /// Occurrences of `sym` in `[0, i)`.
    pub fn rank(&self, sym: u8, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let mut start = 0usize;
        let mut end = i;
        for (level, bv) in self.levels.iter().enumerate() {
            let shift = 7 - level;
            if (sym >> shift) & 1 == 1 {
                start = self.zeros[level] + bv.rank1(start);
                end = self.zeros[level] + bv.rank1(end);
            } else {
                start = bv.rank0(start);
                end = bv.rank0(end);
            }
        }
        end - start
    }

    /// Symbol at `i` *and* its rank up to `i` in one traversal — the exact
    /// pair a LF-mapping step needs.
    pub fn access_and_rank(&self, i: usize) -> (u8, usize) {
        debug_assert!(i < self.len);
        let mut sym = 0u8;
        let mut start = 0usize;
        let mut pos = i;
        for (level, bv) in self.levels.iter().enumerate() {
            let bit = bv.get(pos);
            sym = (sym << 1) | u8::from(bit);
            if bit {
                start = self.zeros[level] + bv.rank1(start);
                pos = self.zeros[level] + bv.rank1(pos);
            } else {
                start = bv.rank0(start);
                pos = bv.rank0(pos);
            }
        }
        (sym, pos - start)
    }

    /// Serializes the matrix.
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::write_usize(out, self.len);
        for (bv, &z) in self.levels.iter().zip(&self.zeros) {
            varint::write_usize(out, z);
            bv.encode(out);
        }
    }

    /// Decodes a matrix written by [`WaveletMatrix::encode`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let len = varint::read_usize(buf, pos)?;
        let mut levels = Vec::with_capacity(LEVELS);
        let mut zeros = Vec::with_capacity(LEVELS);
        for _ in 0..LEVELS {
            zeros.push(varint::read_usize(buf, pos)?);
            let bv = RankBitVec::decode(buf, pos)?;
            if bv.len() != len {
                return Err(FmError::Corrupt("wavelet level length mismatch".into()));
            }
            levels.push(bv);
        }
        Ok(Self { len, levels, zeros })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn check_all(symbols: &[u8]) {
        let wm = WaveletMatrix::build(symbols);
        assert_eq!(wm.len(), symbols.len());
        let mut counts = [0usize; 256];
        for (i, &s) in symbols.iter().enumerate() {
            assert_eq!(wm.access(i), s, "access({i})");
            assert_eq!(wm.rank(s, i), counts[s as usize], "rank({s}, {i})");
            let (sym, r) = wm.access_and_rank(i);
            assert_eq!((sym, r), (s, counts[s as usize]));
            counts[s as usize] += 1;
        }
        for s in [0u8, 1, 128, 255] {
            assert_eq!(wm.rank(s, symbols.len()), counts[s as usize]);
        }
    }

    #[test]
    fn small_cases() {
        check_all(b"");
        check_all(b"a");
        check_all(b"banana");
        check_all(b"mississippi");
        check_all(&[0, 255, 0, 255, 128]);
    }

    #[test]
    fn random_bytes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let symbols: Vec<u8> = (0..3000).map(|_| rng.gen()).collect();
        check_all(&symbols);
    }

    #[test]
    fn skewed_alphabet() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let symbols: Vec<u8> = (0..3000).map(|_| b"ab"[rng.gen_range(0..2usize)]).collect();
        check_all(&symbols);
    }

    #[test]
    fn encode_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let symbols: Vec<u8> = (0..1000).map(|_| rng.gen()).collect();
        let wm = WaveletMatrix::build(&symbols);
        let mut buf = Vec::new();
        wm.encode(&mut buf);
        let mut pos = 0;
        let back = WaveletMatrix::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, wm);
        assert_eq!(pos, buf.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_access_rank_match_naive(symbols in proptest::collection::vec(any::<u8>(), 0..400)) {
            check_all(&symbols);
        }
    }
}
