//! In-memory FM-index core: BWT, C-table, sampled suffix array.
//!
//! [`FmCore`] is the build-time and merge-time representation, and also the
//! structure the dedicated-system baseline keeps in RAM. The on-object-store
//! layout ([`crate::store`]) is a componentized serialization of the same
//! data.
//!
//! ## Text model
//!
//! An FM-index covers a *collection* of documents (one per data page).
//! Documents are concatenated with a [`SEPARATOR`] byte after each, and the
//! whole text ends with a [`SENTINEL`]. A merged index (extended BWT of the
//! combined collections, built by [`crate::merge`]) simply contains several
//! sentinels; patterns never contain separator or sentinel bytes, so
//! backward search is oblivious to how many strings the index covers.

use std::sync::OnceLock;

use rottnest_object_store::{chunk_ranges, ordered_parallel_map};

use crate::sais::suffix_array;
use crate::wavelet::WaveletMatrix;
use crate::{FmError, Result, SENTINEL, SEPARATOR};

/// Default suffix-array sampling rate (1 sample per 32 text positions).
pub const DEFAULT_SAMPLE_RATE: u32 = 32;

/// Replaces bytes that collide with the sentinel/separator (0x00/0x01) by
/// 0x02. Log and web text never legitimately contains them; the substitution
/// is recorded here once so the whole pipeline agrees.
pub fn sanitize(text: &mut [u8]) {
    for b in text.iter_mut() {
        if *b <= SEPARATOR {
            *b = 0x02;
        }
    }
}

/// Validates a search pattern: must be non-empty and free of reserved bytes.
pub fn check_pattern(pattern: &[u8]) -> Result<()> {
    if pattern.is_empty() {
        return Err(FmError::BadPattern("empty pattern".into()));
    }
    if pattern.iter().any(|&b| b <= SEPARATOR) {
        return Err(FmError::BadPattern("pattern contains reserved byte".into()));
    }
    Ok(())
}

/// The in-memory FM-index.
#[derive(Debug, Clone)]
pub struct FmCore {
    /// The BWT, sentinel rows carrying byte [`SENTINEL`].
    pub bwt: Vec<u8>,
    /// `c_table[c]` = number of BWT symbols strictly smaller than `c`;
    /// `c_table[256]` = total length.
    pub c_table: [u64; 257],
    /// `marks[row]`: row's suffix-array value is sampled.
    pub marks: Vec<bool>,
    /// Sampled values, ordered by row (one per set mark).
    pub samples: Vec<u64>,
    /// Wavelet matrix over the whole BWT, built lazily on first in-memory
    /// query (`rank`/`locate`/`resolve_row`). The build and merge paths
    /// serialize per-block wavelet matrices instead and never touch this
    /// one, so constructing a core stays cheap for them.
    wm: OnceLock<WaveletMatrix>,
}

impl FmCore {
    /// Builds the index over `text` (already sanitized, documents separated
    /// by [`SEPARATOR`]); the sentinel is appended internally.
    pub fn build(text: &[u8], sample_rate: u32) -> Self {
        Self::build_with_parallelism(text, sample_rate, 1)
    }

    /// [`build`](Self::build) with the BWT/marks/samples derivation chunked
    /// over `parallelism` threads. Each BWT row depends only on its own
    /// suffix-array entry and the chunks concatenate in order, so the
    /// result is byte-identical at every setting; only the (serial) SA-IS
    /// suffix-array construction stays single-threaded.
    pub fn build_with_parallelism(text: &[u8], sample_rate: u32, parallelism: usize) -> Self {
        debug_assert!(!text.contains(&SENTINEL));
        let sa = suffix_array(text);
        let n = sa.len(); // text.len() + 1
        let ranges = chunk_ranges(n, parallelism.max(1) * 4, 1 << 14);
        let parts = ordered_parallel_map(parallelism, &ranges, |_, range| {
            let mut bwt = Vec::with_capacity(range.len());
            let mut marks = Vec::with_capacity(range.len());
            let mut samples = Vec::new();
            for &v in &sa[range.clone()] {
                let v = v as usize;
                bwt.push(if v == 0 { SENTINEL } else { text[v - 1] });
                // Sample every `rate`-th text position; position 0 (string
                // start) is included, which lets LF walks terminate without
                // stepping through a sentinel.
                let sampled = (v as u32).is_multiple_of(sample_rate);
                marks.push(sampled);
                if sampled {
                    samples.push(v as u64);
                }
            }
            (bwt, marks, samples)
        });
        let mut bwt = Vec::with_capacity(n);
        let mut marks = Vec::with_capacity(n);
        let mut samples = Vec::new();
        for (b, m, s) in parts {
            bwt.extend_from_slice(&b);
            marks.extend_from_slice(&m);
            samples.extend_from_slice(&s);
        }
        Self::from_parts(bwt, marks, samples)
    }

    /// Assembles a core from raw parts (used by merge and the store loader).
    pub fn from_parts(bwt: Vec<u8>, marks: Vec<bool>, samples: Vec<u64>) -> Self {
        debug_assert_eq!(marks.len(), bwt.len());
        debug_assert_eq!(samples.len(), marks.iter().filter(|&&m| m).count());
        let mut c_table = [0u64; 257];
        for &b in &bwt {
            c_table[b as usize + 1] += 1;
        }
        for i in 1..257 {
            c_table[i] += c_table[i - 1];
        }
        Self {
            bwt,
            c_table,
            marks,
            samples,
            wm: OnceLock::new(),
        }
    }

    /// The whole-BWT wavelet matrix, built on first use.
    fn wm(&self) -> &WaveletMatrix {
        self.wm.get_or_init(|| WaveletMatrix::build(&self.bwt))
    }

    /// Total BWT length (text + sentinels).
    pub fn len(&self) -> usize {
        self.bwt.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.bwt.is_empty()
    }

    /// Occurrences of `c` in `bwt[0..i)`.
    #[inline]
    pub fn rank(&self, c: u8, i: usize) -> usize {
        self.wm().rank(c, i)
    }

    /// Backward search: the half-open SA interval of rows whose suffixes
    /// start with `pattern`. Each step fuses the two boundary ranks into
    /// one wavelet traversal ([`WaveletMatrix::rank_range`]).
    pub fn interval(&self, pattern: &[u8]) -> Result<(usize, usize)> {
        check_pattern(pattern)?;
        let mut l = 0usize;
        let mut r = self.len();
        let wm = self.wm();
        for &c in pattern.iter().rev() {
            let (rl, rr) = wm.rank_range(c, l, r);
            if rl >= rr {
                return Ok((0, 0));
            }
            let base = self.c_table[c as usize] as usize;
            l = base + rl;
            r = base + rr;
        }
        Ok((l, r))
    }

    /// One LF-mapping step: the symbol at `row` and `LF(row)` in a single
    /// fused wavelet traversal. This is the kernel of suffix-array
    /// resolution and BWT inversion ([`crate::merge::reconstruct_texts`]).
    #[inline]
    pub fn lf_step(&self, row: usize) -> (u8, usize) {
        let (sym, r) = self.wm().access_and_rank(row);
        (sym, self.c_table[sym as usize] as usize + r)
    }

    /// Number of occurrences of `pattern` across the indexed documents.
    pub fn count(&self, pattern: &[u8]) -> Result<usize> {
        let (l, r) = self.interval(pattern)?;
        Ok(r - l)
    }

    /// Text positions (global concatenated offsets) of up to `limit`
    /// occurrences of `pattern`.
    pub fn locate(&self, pattern: &[u8], limit: usize) -> Result<Vec<u64>> {
        let (l, r) = self.interval(pattern)?;
        let mut out = Vec::with_capacity((r - l).min(limit));
        for row in l..r {
            if out.len() >= limit {
                break;
            }
            out.push(self.resolve_row(row));
        }
        Ok(out)
    }

    /// Resolves one BWT row to its text position by LF-walking to the
    /// nearest sampled row.
    pub fn resolve_row(&self, mut row: usize) -> u64 {
        let mut steps = 0u64;
        loop {
            if self.marks[row] {
                let sample_idx = self.mark_rank(row);
                return self.samples[sample_idx] + steps;
            }
            let (sym, next) = self.lf_step(row);
            debug_assert_ne!(sym, SENTINEL, "string starts must be sampled");
            row = next;
            steps += 1;
        }
    }

    fn mark_rank(&self, row: usize) -> usize {
        // In-memory path: linear scan is fine for tests; the store layout
        // keeps per-block mark bitvectors with O(1) rank instead.
        self.marks[..row].iter().filter(|&&m| m).count()
    }
}

/// Builds the concatenated text for a sequence of documents, sanitizing each
/// and appending the separator. Returns the text and each document's start
/// offset.
pub fn concat_documents<'d>(docs: impl Iterator<Item = &'d [u8]>) -> (Vec<u8>, Vec<u64>) {
    let mut text = Vec::new();
    let mut starts = Vec::new();
    for doc in docs {
        starts.push(text.len() as u64);
        let at = text.len();
        text.extend_from_slice(doc);
        sanitize(&mut text[at..]);
        text.push(SEPARATOR);
    }
    (text, starts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: all positions where `pattern` occurs in `text`.
    fn naive_positions(text: &[u8], pattern: &[u8]) -> Vec<u64> {
        if pattern.is_empty() || pattern.len() > text.len() {
            return Vec::new();
        }
        (0..=text.len() - pattern.len())
            .filter(|&i| &text[i..i + pattern.len()] == pattern)
            .map(|i| i as u64)
            .collect()
    }

    fn check(text: &[u8], patterns: &[&[u8]]) {
        let core = FmCore::build(text, 4);
        for &p in patterns {
            let expect = naive_positions(text, p);
            assert_eq!(core.count(p).unwrap(), expect.len(), "count({:?})", p);
            let mut got = core.locate(p, usize::MAX).unwrap();
            got.sort_unstable();
            assert_eq!(got, expect, "locate({:?})", p);
        }
    }

    #[test]
    fn counts_and_positions_match_naive() {
        check(b"banana", &[b"an", b"na", b"a", b"banana", b"nab", b"x"]);
        check(
            b"mississippi",
            &[b"iss", b"ssi", b"i", b"p", b"mississippi"],
        );
        check(b"aaaaaaaaaa", &[b"a", b"aa", b"aaa"]);
    }

    #[test]
    fn multi_document_text() {
        let (text, starts) = concat_documents(
            [
                b"the quick brown fox".as_slice(),
                b"jumped over",
                b"the lazy dog",
            ]
            .into_iter(),
        );
        assert_eq!(starts, vec![0, 20, 32]);
        let core = FmCore::build(&text, 8);
        assert_eq!(core.count(b"the").unwrap(), 2);
        assert_eq!(core.count(b"lazy").unwrap(), 1);
        assert_eq!(core.count(b"cat").unwrap(), 0);
        let pos = core.locate(b"lazy", 10).unwrap();
        assert_eq!(pos, vec![36]);
    }

    #[test]
    fn sanitize_replaces_reserved_bytes() {
        let mut data = vec![0u8, 1, 2, b'a'];
        sanitize(&mut data);
        assert_eq!(data, vec![2, 2, 2, b'a']);
    }

    #[test]
    fn patterns_with_reserved_bytes_rejected() {
        let core = FmCore::build(b"abc", 4);
        assert!(core.count(b"").is_err());
        assert!(core.count(&[0x00]).is_err());
        assert!(core.count(&[0x01, b'a']).is_err());
    }

    #[test]
    fn locate_respects_limit() {
        let text = b"ab".repeat(100);
        let core = FmCore::build(&text, 4);
        assert_eq!(core.locate(b"ab", 7).unwrap().len(), 7);
        assert_eq!(core.count(b"ab").unwrap(), 100);
    }

    #[test]
    fn sparse_sampling_still_resolves_all_rows() {
        let text = b"abracadabra alakazam abracadabra".to_vec();
        let core = FmCore::build(&text, 16);
        let mut got = core.locate(b"abra", usize::MAX).unwrap();
        got.sort_unstable();
        assert_eq!(got, naive_positions(&text, b"abra"));
    }
}
