//! Componentized on-object-store layout of the FM-index.
//!
//! ```text
//! component 0 (root): n_rows, block_size, sample_rate,
//!                     C table, per-block symbol counts, per-block sample
//!                     bases, page map
//! component 1..=B:    per BWT block: wavelet matrix, sample marks
//!                     bit vector, sampled suffix-array values
//! ```
//!
//! A `count` costs ~2 block components per pattern symbol (the `l` and `r`
//! boundaries); a `locate` additionally walks LF steps, each touching one
//! (cached) block. The root rides along with the speculative open GET.

use bytes::Bytes;
use rottnest_component::{ComponentFile, ComponentWriter, Posting};
use rottnest_compress::{bitpack, varint};
use rottnest_object_store::{ordered_parallel_map, ObjectStore};

use crate::bitvec::RankBitVec;
use crate::core::{check_pattern, FmCore, DEFAULT_SAMPLE_RATE};
use crate::wavelet::WaveletMatrix;
use crate::{FmError, Result, SENTINEL, SEPARATOR};

/// Tuning knobs for the on-store layout.
#[derive(Debug, Clone)]
pub struct FmOptions {
    /// Symbols per BWT block component. Default 64 Ki symbols.
    pub block_size: usize,
    /// Suffix-array sampling rate.
    pub sample_rate: u32,
}

impl Default for FmOptions {
    fn default() -> Self {
        Self {
            block_size: 1 << 16,
            sample_rate: DEFAULT_SAMPLE_RATE,
        }
    }
}

/// Maps global text offsets to page postings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageMap {
    /// Segment start offsets (sorted); segment `i` covers
    /// `starts[i]..starts[i+1]`.
    pub starts: Vec<u64>,
    /// Posting of each segment.
    pub postings: Vec<Posting>,
}

impl PageMap {
    /// Posting covering text offset `pos`.
    pub fn lookup(&self, pos: u64) -> Option<Posting> {
        let idx = self.starts.partition_point(|&s| s <= pos).checked_sub(1)?;
        Some(self.postings[idx])
    }

    /// Appends another map whose offsets shift by `offset`.
    pub fn append_shifted(&mut self, other: &PageMap, offset: u64) {
        self.starts.extend(other.starts.iter().map(|&s| s + offset));
        self.postings.extend_from_slice(&other.postings);
    }

    fn encode(&self, out: &mut Vec<u8>) {
        bitpack::pack_sorted(out, &self.starts);
        bitpack::pack(
            out,
            &self
                .postings
                .iter()
                .map(|p| u64::from(p.file))
                .collect::<Vec<_>>(),
        );
        bitpack::pack(
            out,
            &self
                .postings
                .iter()
                .map(|p| u64::from(p.page))
                .collect::<Vec<_>>(),
        );
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let starts = bitpack::unpack_sorted(buf, pos)?;
        let files = bitpack::unpack(buf, pos)?;
        let pages = bitpack::unpack(buf, pos)?;
        if files.len() != starts.len() || pages.len() != starts.len() {
            return Err(FmError::Corrupt("page map arrays disagree".into()));
        }
        let postings = files
            .into_iter()
            .zip(pages)
            .map(|(f, p)| Posting::new(f as u32, p as u32))
            .collect();
        Ok(Self { starts, postings })
    }
}

/// Incrementally builds an FM-index file from page texts.
pub struct FmBuilder {
    options: FmOptions,
    parallelism: usize,
    text: Vec<u8>,
    map: PageMap,
}

impl FmBuilder {
    /// Creates a builder with default options.
    pub fn new() -> Self {
        Self::with_options(FmOptions::default())
    }

    /// Creates a builder with explicit options.
    pub fn with_options(options: FmOptions) -> Self {
        Self {
            options,
            parallelism: 1,
            text: Vec::new(),
            map: PageMap::default(),
        }
    }

    /// Sets the worker-thread bound for `finish`'s CPU-heavy stages (BWT
    /// derivation, per-block wavelet construction). The produced bytes are
    /// identical at every setting; only wall-clock changes.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Adds one document belonging to data page `posting`. Documents for the
    /// same posting should be added consecutively; consecutive same-posting
    /// documents share a page-map segment.
    pub fn add_document(&mut self, posting: Posting, doc: &[u8]) {
        if self.map.postings.last() != Some(&posting) {
            self.map.starts.push(self.text.len() as u64);
            self.map.postings.push(posting);
        }
        let at = self.text.len();
        self.text.extend_from_slice(doc);
        crate::core::sanitize(&mut self.text[at..]);
        self.text.push(SEPARATOR);
    }

    /// Total sanitized text bytes accumulated.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// Whether nothing was added.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Builds the index image.
    pub fn finish(self) -> Bytes {
        let core =
            FmCore::build_with_parallelism(&self.text, self.options.sample_rate, self.parallelism);
        write_file(&core, &self.map, &self.options, self.parallelism)
    }

    /// Builds and uploads; returns the file size.
    pub fn finish_into(self, store: &dyn ObjectStore, key: &str) -> Result<u64> {
        let bytes = self.finish();
        let len = bytes.len() as u64;
        store.put(key, bytes)?;
        Ok(len)
    }
}

impl Default for FmBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Serializes a built core + page map into the component layout. Shared by
/// the builder and the merge path.
///
/// Blocks are independent: their symbol counts, wavelet matrices, and
/// sample slices (addressed by prefix-summed per-block sample bases, the
/// same arithmetic the serial cursor performed) are computed over
/// `parallelism` threads and emitted strictly in block order, so the file
/// image is byte-identical at every setting.
pub(crate) fn write_file(
    core: &FmCore,
    map: &PageMap,
    options: &FmOptions,
    parallelism: usize,
) -> Bytes {
    let n = core.len();
    let bs = options.block_size;
    let n_blocks = n.div_ceil(bs);
    let blocks: Vec<usize> = (0..n_blocks).collect();

    // Per-block symbol counts and mark counts, computed in parallel and
    // consumed in block order below.
    let block_stats = ordered_parallel_map(parallelism, &blocks, |_, &b| {
        let start = b * bs;
        let end = (start + bs).min(n);
        let mut counts = [0u64; 256];
        for &sym in &core.bwt[start..end] {
            counts[sym as usize] += 1;
        }
        let marks = core.marks[start..end].iter().filter(|&&m| m).count() as u64;
        (counts, marks)
    });

    let mut writer = ComponentWriter::new();

    // Root component.
    let mut root = Vec::new();
    root.push(1u8); // layout version
    varint::write_usize(&mut root, n);
    varint::write_usize(&mut root, bs);
    varint::write_u64(&mut root, u64::from(options.sample_rate));
    for &c in core.c_table.iter() {
        varint::write_u64(&mut root, c);
    }
    varint::write_usize(&mut root, n_blocks);
    // Per-block symbol-count increments (reconstructed to cumulative on
    // open) and sample bases — the bases double as each block's starting
    // cursor into `core.samples`.
    let mut sample_base = 0u64;
    let mut sample_starts = Vec::with_capacity(n_blocks);
    for (counts, mark_count) in &block_stats {
        for &c in counts {
            varint::write_u64(&mut root, c);
        }
        varint::write_u64(&mut root, sample_base);
        sample_starts.push(sample_base as usize);
        sample_base += mark_count;
    }
    map.encode(&mut root);
    writer.add(root);

    // Block components: wavelet-matrix construction dominates the CPU
    // cost of serialization, and every block is independent.
    let bufs = ordered_parallel_map(parallelism, &blocks, |idx, &b| {
        let start = b * bs;
        let end = (start + bs).min(n);
        let mut buf = Vec::new();
        WaveletMatrix::build(&core.bwt[start..end]).encode(&mut buf);
        let mut marks_bv = crate::bitvec::BitVecBuilder::with_capacity(end - start);
        let mut block_samples = Vec::new();
        let mut sample_cursor = sample_starts[idx];
        for i in start..end {
            marks_bv.push(core.marks[i]);
            if core.marks[i] {
                block_samples.push(core.samples[sample_cursor]);
                sample_cursor += 1;
            }
        }
        marks_bv.finish().encode(&mut buf);
        bitpack::pack(&mut buf, &block_samples);
        buf
    });
    for buf in bufs {
        writer.add(buf);
    }
    writer.finish()
}

pub(crate) struct Block {
    pub(crate) wm: WaveletMatrix,
    pub(crate) marks: RankBitVec,
    pub(crate) samples: Vec<u64>,
}

fn decode_block(buf: &[u8]) -> Result<Block> {
    let mut pos = 0usize;
    let wm = WaveletMatrix::decode(buf, &mut pos)?;
    let marks = RankBitVec::decode(buf, &mut pos)?;
    let samples = bitpack::unpack(buf, &mut pos)?;
    if marks.len() != wm.len() || samples.len() != marks.count_ones() {
        return Err(FmError::Corrupt("block arrays disagree".into()));
    }
    Ok(Block { wm, marks, samples })
}

/// Read handle over an FM-index file on object storage.
pub struct FmIndex<'a> {
    file: ComponentFile<'a>,
    /// Decoded-block cache: LF walks revisit the same block many times per
    /// locate; decoding the wavelet matrix once per block, not per step,
    /// keeps the CPU cost proportional to distinct blocks touched.
    blocks: std::sync::Mutex<rottnest_object_store::FxHashMap<usize, std::sync::Arc<Block>>>,
    n: usize,
    block_size: usize,
    sample_rate: u32,
    c_table: [u64; 257],
    /// `cum[b][c]` = occurrences of `c` before block `b`; length
    /// `n_blocks + 1`.
    cum: Vec<[u64; 256]>,
    /// Cumulative sample counts per block (on-disk field; kept for
    /// future global-sample addressing, currently resolved per block).
    #[allow(dead_code)]
    sample_bases: Vec<u64>,
    map: PageMap,
}

impl<'a> FmIndex<'a> {
    /// Opens an index written by [`FmBuilder`] (or [`crate::merge_fm`]).
    pub fn open(store: &'a dyn ObjectStore, key: &str) -> Result<Self> {
        let file = ComponentFile::open(store, key)?;
        let root = file.component(0)?;
        if root.first() != Some(&1u8) {
            return Err(FmError::Corrupt("unsupported fm layout version".into()));
        }
        let mut pos = 1usize;
        let n = varint::read_usize(&root, &mut pos)?;
        let block_size = varint::read_usize(&root, &mut pos)?;
        if block_size == 0 {
            return Err(FmError::Corrupt("zero block size".into()));
        }
        let sample_rate = varint::read_u64(&root, &mut pos)? as u32;
        let mut c_table = [0u64; 257];
        for c in c_table.iter_mut() {
            *c = varint::read_u64(&root, &mut pos)?;
        }
        let n_blocks = varint::read_usize(&root, &mut pos)?;
        let mut cum = vec![[0u64; 256]; n_blocks + 1];
        let mut sample_bases = Vec::with_capacity(n_blocks);
        for b in 0..n_blocks {
            let prev = cum[b];
            for (c, slot) in cum[b + 1].iter_mut().enumerate() {
                let inc = varint::read_u64(&root, &mut pos)?;
                *slot = prev[c] + inc;
            }
            sample_bases.push(varint::read_u64(&root, &mut pos)?);
        }
        let map = PageMap::decode(&root, &mut pos)?;
        Ok(Self {
            file,
            blocks: std::sync::Mutex::new(Default::default()),
            n,
            block_size,
            sample_rate,
            c_table,
            cum,
            sample_bases,
            map,
        })
    }

    /// BWT length (text + sentinels).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the index covers no text.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Suffix-array sample rate recorded at build time.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// The page map (text offsets → postings).
    pub fn page_map(&self) -> &PageMap {
        &self.map
    }

    /// Number of BWT block components.
    pub fn num_blocks(&self) -> usize {
        self.cum.len() - 1
    }

    fn block(&self, b: usize) -> Result<std::sync::Arc<Block>> {
        if let Some(hit) = self.blocks.lock().expect("block cache").get(&b) {
            return Ok(hit.clone());
        }
        let block = std::sync::Arc::new(decode_block(&self.file.component(b + 1)?)?);
        self.blocks
            .lock()
            .expect("block cache")
            .insert(b, block.clone());
        Ok(block)
    }

    /// Visits every block in order after one batched fetch of all block
    /// components (used by merge's full materialization).
    pub(crate) fn for_each_block(&self, mut f: impl FnMut(&Block)) -> Result<()> {
        let ids: Vec<usize> = (1..=self.num_blocks()).collect();
        self.file.components(&ids)?;
        for b in 0..self.num_blocks() {
            f(self.block(b)?.as_ref());
        }
        Ok(())
    }

    /// Prefetches the blocks containing the given global positions in one
    /// parallel round trip.
    fn prefetch_positions(&self, positions: &[usize]) -> Result<()> {
        let mut ids: Vec<usize> = positions
            .iter()
            .map(|&i| (i / self.block_size).min(self.num_blocks() - 1) + 1)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        self.file.components(&ids)?;
        Ok(())
    }

    /// Occurrences of `c` in `bwt[0..i)`.
    fn rank(&self, c: u8, i: usize) -> Result<usize> {
        debug_assert!(i <= self.n);
        let b = i / self.block_size;
        if b >= self.num_blocks() {
            return Ok(self.cum[self.num_blocks()][c as usize] as usize);
        }
        let block = self.block(b)?;
        Ok(self.cum[b][c as usize] as usize + block.wm.rank(c, i - b * self.block_size))
    }

    /// Backward search for the SA interval of `pattern`. When both interval
    /// boundaries land in the same BWT block — the common case once the
    /// interval narrows — the step runs as one fused wavelet traversal
    /// ([`WaveletMatrix::rank_range`]) instead of two independent ranks.
    pub fn interval(&self, pattern: &[u8]) -> Result<(usize, usize)> {
        check_pattern(pattern)?;
        let mut l = 0usize;
        let mut r = self.n;
        for &c in pattern.iter().rev() {
            // Fetch both boundary blocks in one round trip.
            self.prefetch_positions(&[l.min(self.n - 1), r.min(self.n - 1)])?;
            let (bl, br) = (l / self.block_size, r / self.block_size);
            let (rl, rr) = if bl == br && bl < self.num_blocks() {
                let block = self.block(bl)?;
                let cum = self.cum[bl][c as usize] as usize;
                let local = bl * self.block_size;
                let (a, b) = block.wm.rank_range(c, l - local, r - local);
                (cum + a, cum + b)
            } else {
                (self.rank(c, l)?, self.rank(c, r)?)
            };
            if rl >= rr {
                return Ok((0, 0));
            }
            let base = self.c_table[c as usize] as usize;
            l = base + rl;
            r = base + rr;
        }
        Ok((l, r))
    }

    /// Total occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> Result<usize> {
        let (l, r) = self.interval(pattern)?;
        Ok(r - l)
    }

    /// Locates up to `limit` occurrences, returning deduplicated page
    /// postings (with per-page hit counts).
    pub fn locate_pages(&self, pattern: &[u8], limit: usize) -> Result<Vec<(Posting, u32)>> {
        let (l, r) = self.interval(pattern)?;
        let take = (r - l).min(limit);
        // Warm the cache for the starting rows.
        let rows: Vec<usize> = (l..l + take).collect();
        if !rows.is_empty() {
            self.prefetch_positions(&rows)?;
        }
        let mut hits: Vec<(Posting, u32)> = Vec::new();
        for row in l..l + take {
            let pos = self.resolve_row(row)?;
            if let Some(p) = self.map.lookup(pos) {
                match hits.iter_mut().find(|(q, _)| *q == p) {
                    Some((_, n)) => *n += 1,
                    None => hits.push((p, 1)),
                }
            }
        }
        Ok(hits)
    }

    /// Locates up to `limit` raw text offsets.
    pub fn locate_offsets(&self, pattern: &[u8], limit: usize) -> Result<Vec<u64>> {
        let (l, r) = self.interval(pattern)?;
        let take = (r - l).min(limit);
        (l..l + take).map(|row| self.resolve_row(row)).collect()
    }

    fn resolve_row(&self, mut row: usize) -> Result<u64> {
        let mut steps = 0u64;
        loop {
            let b = row / self.block_size;
            let local = row - b * self.block_size;
            let block = self.block(b)?;
            if block.marks.get(local) {
                let idx = block.marks.rank1(local);
                return Ok(block.samples[idx] + steps);
            }
            let (sym, r) = block.wm.access_and_rank(local);
            debug_assert_ne!(sym, SENTINEL, "string starts must be sampled");
            row = self.c_table[sym as usize] as usize + self.cum[b][sym as usize] as usize + r;
            steps += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rottnest_object_store::MemoryStore;

    fn corpus() -> Vec<(Posting, Vec<String>)> {
        let mut pages = Vec::new();
        for page in 0..12u32 {
            let docs: Vec<String> = (0..40)
                .map(|d| {
                    format!(
                        "page {page} doc {d}: the quick brown fox id{page:02}x{d:02} jumps over"
                    )
                })
                .collect();
            pages.push((Posting::new(page / 6, page % 6), docs));
        }
        pages
    }

    fn build(store: &dyn ObjectStore, key: &str, options: FmOptions) {
        let mut b = FmBuilder::with_options(options);
        for (posting, docs) in corpus() {
            for d in &docs {
                b.add_document(posting, d.as_bytes());
            }
        }
        b.finish_into(store, key).unwrap();
    }

    #[test]
    fn count_matches_naive() {
        let store = MemoryStore::unmetered();
        build(
            store.as_ref(),
            "f.idx",
            FmOptions {
                block_size: 1 << 10,
                ..Default::default()
            },
        );
        let idx = FmIndex::open(store.as_ref(), "f.idx").unwrap();

        // 12 pages × 40 docs contain "quick brown fox".
        assert_eq!(idx.count(b"quick brown fox").unwrap(), 480);
        assert_eq!(idx.count(b"id03x07").unwrap(), 1);
        assert_eq!(idx.count(b"zebra").unwrap(), 0);
        // Trailing colon pins the doc number: only "doc 1:" matches, not
        // "doc 10:".."doc 19:", and "page 11" does not contain "page 1 ".
        assert_eq!(idx.count(b"page 1 doc 1:").unwrap(), 1);
    }

    #[test]
    fn locate_pages_finds_the_right_page() {
        let store = MemoryStore::unmetered();
        build(
            store.as_ref(),
            "f.idx",
            FmOptions {
                block_size: 1 << 10,
                ..Default::default()
            },
        );
        let idx = FmIndex::open(store.as_ref(), "f.idx").unwrap();

        let hits = idx.locate_pages(b"id07x13", 100).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, Posting::new(7 / 6, 7 % 6));
        assert_eq!(hits[0].1, 1);

        // A needle on every page returns every posting.
        let hits = idx.locate_pages(b"jumps over", usize::MAX).unwrap();
        assert_eq!(hits.len(), 12);
        assert_eq!(hits.iter().map(|(_, n)| n).sum::<u32>(), 480);
    }

    #[test]
    fn block_boundaries_are_transparent() {
        // A tiny block size forces patterns and LF walks across many blocks.
        let store = MemoryStore::unmetered();
        build(
            store.as_ref(),
            "f.idx",
            FmOptions {
                block_size: 257,
                sample_rate: 8,
            },
        );
        let idx = FmIndex::open(store.as_ref(), "f.idx").unwrap();
        assert!(idx.num_blocks() > 50);
        assert_eq!(idx.count(b"quick brown fox").unwrap(), 480);
        let hits = idx.locate_pages(b"id11x39", 10).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn matches_in_memory_core() {
        let store = MemoryStore::unmetered();
        build(store.as_ref(), "f.idx", FmOptions::default());
        let idx = FmIndex::open(store.as_ref(), "f.idx").unwrap();

        let mut text = Vec::new();
        for (_, docs) in corpus() {
            for d in &docs {
                text.extend_from_slice(d.as_bytes());
                text.push(SEPARATOR);
            }
        }
        let core = FmCore::build(&text, 32);
        for pattern in [b"fox id".as_slice(), b"doc 3", b"page 11", b" over"] {
            assert_eq!(
                idx.count(pattern).unwrap(),
                core.count(pattern).unwrap(),
                "pattern {:?}",
                std::str::from_utf8(pattern)
            );
        }
    }

    #[test]
    fn page_map_lookup() {
        let map = PageMap {
            starts: vec![0, 100, 250],
            postings: vec![Posting::new(0, 0), Posting::new(0, 1), Posting::new(1, 0)],
        };
        assert_eq!(map.lookup(0), Some(Posting::new(0, 0)));
        assert_eq!(map.lookup(99), Some(Posting::new(0, 0)));
        assert_eq!(map.lookup(100), Some(Posting::new(0, 1)));
        assert_eq!(map.lookup(5000), Some(Posting::new(1, 0)));
    }

    #[test]
    fn empty_pattern_and_reserved_bytes_rejected() {
        let store = MemoryStore::unmetered();
        build(store.as_ref(), "f.idx", FmOptions::default());
        let idx = FmIndex::open(store.as_ref(), "f.idx").unwrap();
        assert!(idx.count(b"").is_err());
        assert!(idx.count(&[0x00, b'a']).is_err());
    }

    #[test]
    fn lf_walks_reuse_cached_blocks() {
        let store = MemoryStore::unmetered();
        build(
            store.as_ref(),
            "f.idx",
            FmOptions {
                block_size: 1 << 12,
                sample_rate: 16,
            },
        );
        let idx = FmIndex::open(store.as_ref(), "f.idx").unwrap();

        // First locate pulls the blocks it needs…
        idx.locate_pages(b"quick brown fox", 64).unwrap();
        let before = store.stats();
        // …a repeat locate of the same pattern needs no further GETs at all
        // (bytes cached by the component layer, decoded blocks by FmIndex).
        idx.locate_pages(b"quick brown fox", 64).unwrap();
        assert_eq!(store.stats().since(&before).gets, 0);
    }
}
