//! FM-index compaction: merging BWTs with bounded interleave iterations
//! (Holt & McMillan, *Merging of multi-string BWTs with applications*,
//! Bioinformatics 2014 — reference \[43\] of the paper, §V-C2).
//!
//! Each FM-index is the extended BWT of a *collection* of documents (one
//! sentinel per source index). Merging two indexes produces the eBWT of the
//! combined collection **without re-running suffix-array construction**:
//!
//! 1. Start from the trivial interleave (all of A's rows before B's).
//! 2. Repeatedly route rows through an LF-style stable counting pass; the
//!    interleave vector converges to the true merged row order (sentinels
//!    from A are ordered before sentinels from B, matching the collection
//!    order).
//! 3. Read off the merged BWT, suffix-array marks/samples (B's text offsets
//!    shift by A's length) and page map.
//!
//! The iteration count is bounded by [`MergePolicy::max_iterations`]; on
//! overrun the merge reconstructs the source texts (linear LF walks) and
//! rebuilds from scratch via SA-IS instead — same result, more compute.

use rottnest_object_store::{ordered_parallel_map_io, ObjectStore};

use crate::core::FmCore;
use crate::store::{write_file, FmIndex, FmOptions, PageMap};
use crate::{FmError, Result, SENTINEL};

/// Controls the merge strategy.
#[derive(Debug, Clone)]
pub struct MergePolicy {
    /// Interleave refinement iteration budget ("bounded interleave
    /// iterations"); beyond it the merge falls back to rebuilding.
    pub max_iterations: usize,
    /// Layout options for the merged file.
    pub options: FmOptions,
    /// Worker-thread bound for source downloads and the merged file's
    /// serialization. Output bytes are identical at every setting.
    pub parallelism: usize,
}

impl Default for MergePolicy {
    fn default() -> Self {
        Self {
            max_iterations: 10_000,
            options: FmOptions::default(),
            parallelism: 1,
        }
    }
}

/// A fully materialized index: core + page map (loaded from a store handle,
/// produced by a merge).
#[derive(Debug, Clone)]
pub struct LoadedFm {
    /// The in-memory index.
    pub core: FmCore,
    /// Its page map.
    pub map: PageMap,
}

/// Downloads and materializes an on-store index (all blocks in one batched
/// round trip).
pub fn load_full(index: &FmIndex<'_>) -> Result<LoadedFm> {
    let n_blocks = index.num_blocks();
    // Reconstruct the BWT, marks and samples by scanning blocks.
    let mut bwt = Vec::with_capacity(index.len());
    let mut marks = Vec::with_capacity(index.len());
    let mut samples = Vec::new();
    index.for_each_block(|block| {
        for i in 0..block.wm.len() {
            bwt.push(block.wm.access(i));
            let m = block.marks.get(i);
            marks.push(m);
            if m {
                samples.push(block.samples[block.marks.rank1(i)]);
            }
        }
    })?;
    debug_assert_eq!(bwt.len(), index.len());
    let _ = n_blocks;
    Ok(LoadedFm {
        core: FmCore::from_parts(bwt, marks, samples),
        map: index.page_map().clone(),
    })
}

/// Merges two materialized indexes into one.
pub fn merge_cores(a: &LoadedFm, b: &LoadedFm, policy: &MergePolicy) -> Result<LoadedFm> {
    let na = a.core.len();
    let nb = b.core.len();
    let interleave = match compute_interleave(&a.core.bwt, &b.core.bwt, policy.max_iterations) {
        Ok(v) => v,
        Err(FmError::MergeBudget { .. }) => {
            // Rebuild fallback: reconstruct texts and index from scratch.
            return Ok(rebuild_merge(a, b, policy));
        }
        Err(e) => return Err(e),
    };

    let mut bwt = Vec::with_capacity(na + nb);
    let mut marks = Vec::with_capacity(na + nb);
    let mut samples = Vec::new();
    let (mut pa, mut pb) = (0usize, 0usize);
    let mut sa_idx = 0usize;
    let mut sb_idx = 0usize;
    for &from_b in &interleave {
        if from_b {
            bwt.push(b.core.bwt[pb]);
            let m = b.core.marks[pb];
            marks.push(m);
            if m {
                samples.push(b.core.samples[sb_idx] + na as u64);
                sb_idx += 1;
            }
            pb += 1;
        } else {
            bwt.push(a.core.bwt[pa]);
            let m = a.core.marks[pa];
            marks.push(m);
            if m {
                samples.push(a.core.samples[sa_idx]);
                sa_idx += 1;
            }
            pa += 1;
        }
    }

    let mut map = a.map.clone();
    map.append_shifted(&b.map, na as u64);
    Ok(LoadedFm {
        core: FmCore::from_parts(bwt, marks, samples),
        map,
    })
}

/// Computes the interleave vector (`true` = row comes from `b`) by iterated
/// stable LF routing. Sentinels are routed through origin-split buckets so
/// A's strings order before B's, matching eBWT collection order.
fn compute_interleave(bwt_a: &[u8], bwt_b: &[u8], max_iterations: usize) -> Result<Vec<bool>> {
    let n = bwt_a.len() + bwt_b.len();
    // Bucket layout: [sentinels of A][sentinels of B][symbol 1][symbol 2]…
    let mut bucket_starts = [0usize; 258];
    {
        let mut counts = [0usize; 258];
        for &c in bwt_a {
            counts[if c == SENTINEL { 0 } else { c as usize + 1 }] += 1;
        }
        for &c in bwt_b {
            counts[if c == SENTINEL { 1 } else { c as usize + 1 }] += 1;
        }
        let mut sum = 0usize;
        for (s, &c) in bucket_starts.iter_mut().zip(&counts) {
            *s = sum;
            sum += c;
        }
    }

    let mut interleave = vec![false; n];
    for slot in interleave.iter_mut().skip(bwt_a.len()) {
        *slot = true;
    }

    let mut next = vec![false; n];
    for iteration in 0..max_iterations {
        let mut ptr = bucket_starts;
        let (mut pa, mut pb) = (0usize, 0usize);
        for &slot in interleave.iter() {
            let (sym, from_b) = if slot {
                let s = bwt_b[pb];
                pb += 1;
                (s, true)
            } else {
                let s = bwt_a[pa];
                pa += 1;
                (s, false)
            };
            let bucket = if sym == SENTINEL {
                usize::from(from_b)
            } else {
                sym as usize + 1
            };
            next[ptr[bucket]] = from_b;
            ptr[bucket] += 1;
        }
        if next == interleave {
            return Ok(interleave);
        }
        std::mem::swap(&mut interleave, &mut next);
        if iteration + 1 == max_iterations {
            return Err(FmError::MergeBudget {
                iterations: max_iterations,
            });
        }
    }
    Err(FmError::MergeBudget {
        iterations: max_iterations,
    })
}

/// Slow-path merge: reconstruct each source string, concatenate the
/// collections, rebuild with SA-IS.
fn rebuild_merge(a: &LoadedFm, b: &LoadedFm, policy: &MergePolicy) -> LoadedFm {
    let mut text = Vec::new();
    // Reconstructing strings drops each source's sentinel; string order is
    // preserved, so page-map offsets must be recomputed: each source's
    // non-sentinel text keeps its internal offsets, but sentinel count
    // shifts. To keep offsets *identical* to the interleave path (B shifted
    // by A's full length including sentinels), re-append one separator-free
    // sentinel placeholder per string via text reconstruction order.
    for src in [a, b] {
        for s in reconstruct_texts(&src.core) {
            text.extend_from_slice(&s);
            // Each reconstructed string already ends with its document
            // separators; the per-string sentinel becomes a fresh one when
            // rebuilding, preserving length and offsets.
            text.push(crate::SEPARATOR);
        }
    }
    // Each reconstructed string plus its replacement separator is exactly
    // as long as the string plus its former sentinel, so every source
    // offset — and therefore every page-map segment — stays valid; B's map
    // shifts by A's full BWT length, same as the interleave path.
    let a_len = a.core.len() as u64;
    let mut map = a.map.clone();
    map.append_shifted(&b.map, a_len);
    let core = FmCore::build(&text, policy.options.sample_rate);
    LoadedFm { core, map }
}

/// Reconstructs every string of the collection from its eBWT (LF walks from
/// the sentinel rows). Strings come back in collection order, including
/// their trailing document separators but excluding sentinels.
pub fn reconstruct_texts(core: &FmCore) -> Vec<Vec<u8>> {
    let n_strings = core.c_table[1] as usize; // symbols < 1 == sentinels
    let mut out = Vec::with_capacity(n_strings);
    for j in 0..n_strings {
        // Row j is the j-th sentinel-suffix row; LF-walk backwards from the
        // string's end until wrapping to its sentinel.
        let mut rev = Vec::new();
        let mut row = j;
        loop {
            // One fused access+rank traversal per LF step — the symbol and
            // its rank come from the same wavelet descent.
            let (sym, next) = core.lf_step(row);
            if sym == SENTINEL {
                break;
            }
            rev.push(sym);
            row = next;
        }
        rev.reverse();
        out.push(rev);
    }
    out
}

/// Merges any number of on-store indexes into a new index file at `out_key`.
/// Returns the merged file size. Each source is paired with a file-id
/// offset added to its page postings, so the caller can concatenate the
/// sources' file lists (as Rottnest's `compact` does).
pub fn merge_fm(
    store: &dyn ObjectStore,
    sources: &[(&FmIndex<'_>, u32)],
    out_key: &str,
    policy: &MergePolicy,
) -> Result<u64> {
    if sources.is_empty() {
        return Err(FmError::Corrupt("nothing to merge".into()));
    }
    // Materialize every source concurrently (downloads overlap), then fold
    // the merge strictly in source order so the result matches the serial
    // fold byte-for-byte.
    let mut loaded = ordered_parallel_map_io(
        policy.parallelism,
        store.clock(),
        sources,
        |_, &(src, offset)| {
            load_full(src).map(|mut l| {
                for p in &mut l.map.postings {
                    p.file += offset;
                }
                l
            })
        },
    )
    .into_iter()
    .collect::<Result<Vec<LoadedFm>>>()?
    .into_iter();
    let mut acc = loaded.next().expect("at least one source");
    for next in loaded {
        acc = merge_cores(&acc, &next, policy)?;
    }
    let bytes = write_file(&acc.core, &acc.map, &policy.options, policy.parallelism);
    let len = bytes.len() as u64;
    store.put(out_key, bytes)?;
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FmBuilder;
    use crate::Posting;
    use rottnest_object_store::MemoryStore;

    fn build_source(store: &dyn ObjectStore, key: &str, file_id: u32, docs: &[&str]) {
        let mut b = FmBuilder::with_options(FmOptions {
            block_size: 512,
            ..Default::default()
        });
        for (i, d) in docs.iter().enumerate() {
            b.add_document(Posting::new(file_id, i as u32), d.as_bytes());
        }
        b.finish_into(store, key).unwrap();
    }

    #[test]
    fn interleave_merge_preserves_counts() {
        let store = MemoryStore::unmetered();
        let docs_a = [
            "the quick brown fox",
            "lazy dogs sleep all day",
            "fox hunting season",
        ];
        let docs_b = ["quick thinking saves the day", "brown bears", "a fox again"];
        build_source(store.as_ref(), "a.fm", 0, &docs_a);
        build_source(store.as_ref(), "b.fm", 1, &docs_b);

        let ia = FmIndex::open(store.as_ref(), "a.fm").unwrap();
        let ib = FmIndex::open(store.as_ref(), "b.fm").unwrap();
        merge_fm(
            store.as_ref(),
            &[(&ia, 0), (&ib, 0)],
            "m.fm",
            &MergePolicy::default(),
        )
        .unwrap();
        let merged = FmIndex::open(store.as_ref(), "m.fm").unwrap();

        for (pattern, want) in [
            ("fox", 3usize),
            ("quick", 2),
            ("brown", 2),
            ("day", 2),
            ("the", 2),
            ("zebra", 0),
        ] {
            assert_eq!(
                merged.count(pattern.as_bytes()).unwrap(),
                want,
                "pattern {pattern:?}"
            );
        }
    }

    #[test]
    fn interleave_merge_locates_correct_pages() {
        let store = MemoryStore::unmetered();
        build_source(store.as_ref(), "a.fm", 0, &["alpha alpha", "beta"]);
        build_source(store.as_ref(), "b.fm", 1, &["gamma", "alpha delta"]);
        let ia = FmIndex::open(store.as_ref(), "a.fm").unwrap();
        let ib = FmIndex::open(store.as_ref(), "b.fm").unwrap();
        merge_fm(
            store.as_ref(),
            &[(&ia, 0), (&ib, 0)],
            "m.fm",
            &MergePolicy::default(),
        )
        .unwrap();
        let merged = FmIndex::open(store.as_ref(), "m.fm").unwrap();

        let mut hits = merged.locate_pages(b"alpha", 100).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, vec![(Posting::new(0, 0), 2), (Posting::new(1, 1), 1)]);

        let hits = merged.locate_pages(b"gamma", 100).unwrap();
        assert_eq!(hits, vec![(Posting::new(1, 0), 1)]);
    }

    #[test]
    fn merge_of_three_sources_folds() {
        let store = MemoryStore::unmetered();
        for (i, docs) in [["one two"], ["two three"], ["three four"]]
            .iter()
            .enumerate()
        {
            let strs: Vec<&str> = docs.to_vec();
            build_source(store.as_ref(), &format!("{i}.fm"), i as u32, &strs);
        }
        let i0 = FmIndex::open(store.as_ref(), "0.fm").unwrap();
        let i1 = FmIndex::open(store.as_ref(), "1.fm").unwrap();
        let i2 = FmIndex::open(store.as_ref(), "2.fm").unwrap();
        merge_fm(
            store.as_ref(),
            &[(&i0, 0), (&i1, 0), (&i2, 0)],
            "m.fm",
            &MergePolicy::default(),
        )
        .unwrap();
        let merged = FmIndex::open(store.as_ref(), "m.fm").unwrap();
        assert_eq!(merged.count(b"two").unwrap(), 2);
        assert_eq!(merged.count(b"three").unwrap(), 2);
        assert_eq!(merged.count(b"one").unwrap(), 1);
        assert_eq!(merged.count(b"four").unwrap(), 1);
    }

    #[test]
    fn merged_equals_jointly_built_counts() {
        // The merged index must answer exactly like an index built over the
        // union collection.
        let store = MemoryStore::unmetered();
        let docs_a: Vec<String> = (0..30)
            .map(|i| format!("alpha document number {i} payload xyz"))
            .collect();
        let docs_b: Vec<String> = (0..30)
            .map(|i| format!("beta document number {i} payload abc"))
            .collect();
        let ra: Vec<&str> = docs_a.iter().map(|s| s.as_str()).collect();
        let rb: Vec<&str> = docs_b.iter().map(|s| s.as_str()).collect();
        build_source(store.as_ref(), "a.fm", 0, &ra);
        build_source(store.as_ref(), "b.fm", 1, &rb);
        let ia = FmIndex::open(store.as_ref(), "a.fm").unwrap();
        let ib = FmIndex::open(store.as_ref(), "b.fm").unwrap();
        merge_fm(
            store.as_ref(),
            &[(&ia, 0), (&ib, 0)],
            "m.fm",
            &MergePolicy::default(),
        )
        .unwrap();
        let merged = FmIndex::open(store.as_ref(), "m.fm").unwrap();

        let mut joint = FmBuilder::new();
        for (i, d) in ra.iter().enumerate() {
            joint.add_document(Posting::new(0, i as u32), d.as_bytes());
        }
        for (i, d) in rb.iter().enumerate() {
            joint.add_document(Posting::new(1, i as u32), d.as_bytes());
        }
        joint.finish_into(store.as_ref(), "j.fm").unwrap();
        let joint = FmIndex::open(store.as_ref(), "j.fm").unwrap();

        for pattern in [
            "document number 2",
            "payload",
            "alpha",
            "abc",
            "number 19 payload",
        ] {
            assert_eq!(
                merged.count(pattern.as_bytes()).unwrap(),
                joint.count(pattern.as_bytes()).unwrap(),
                "pattern {pattern:?}"
            );
        }
    }

    #[test]
    fn reconstruct_texts_inverts_the_bwt() {
        let text = b"hello world\x01goodbye moon\x01";
        let core = FmCore::build(text, 4);
        let strings = reconstruct_texts(&core);
        assert_eq!(strings.len(), 1);
        assert_eq!(strings[0], text.to_vec());
    }

    #[test]
    fn tight_budget_trips_merge_budget_error() {
        // Repetitive cross-index text needs several refinement rounds;
        // budget 1 cannot converge.
        let a = FmCore::build(b"aaaaaaaaaaaaaaaa\x01", 4);
        let b = FmCore::build(b"aaaaaaaaaaaaaaab\x01", 4);
        let err = compute_interleave(&a.bwt, &b.bwt, 1).unwrap_err();
        assert!(matches!(err, FmError::MergeBudget { .. }));
    }
}
