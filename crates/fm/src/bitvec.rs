//! Succinct bit vector with O(1) rank, the building block of the wavelet
//! matrix.
//!
//! Bits are stored in `u64` words; a superblock count every 8 words (512
//! bits) answers `rank1` with one lookup plus at most 8 popcounts. The
//! serialized form stores only the raw words — counts are rebuilt on load,
//! trading a linear scan (cheap, already in memory) for smaller components.

use rottnest_compress::varint;

use crate::{FmError, Result};

const WORDS_PER_BLOCK: usize = 8; // 512-bit superblocks

/// An immutable bit vector with rank support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankBitVec {
    len: usize,
    words: Vec<u64>,
    /// Cumulative ones before each superblock.
    counts: Vec<u32>,
}

/// Append-only builder for [`RankBitVec`].
#[derive(Debug, Default)]
pub struct BitVecBuilder {
    len: usize,
    words: Vec<u64>,
}

impl BitVecBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder expecting `n` bits.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            len: 0,
            words: Vec::with_capacity(n.div_ceil(64)),
        }
    }

    /// Appends one bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Finalizes into a rank-ready vector.
    pub fn finish(self) -> RankBitVec {
        RankBitVec::from_words(self.words, self.len)
    }
}

impl RankBitVec {
    fn from_words(words: Vec<u64>, len: usize) -> Self {
        let n_blocks = words.len().div_ceil(WORDS_PER_BLOCK);
        let mut counts = Vec::with_capacity(n_blocks + 1);
        let mut acc = 0u32;
        counts.push(0);
        for block in words.chunks(WORDS_PER_BLOCK) {
            acc += block.iter().map(|w| w.count_ones()).sum::<u32>();
            counts.push(acc);
        }
        Self { len, words, counts }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of 1-bits in `[0, i)`.
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let word = i / 64;
        let block = word / WORDS_PER_BLOCK;
        let mut acc = self.counts[block] as usize;
        for w in &self.words[block * WORDS_PER_BLOCK..word] {
            acc += w.count_ones() as usize;
        }
        let rem = i % 64;
        if rem > 0 {
            acc += (self.words[word] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        acc
    }

    /// Number of 0-bits in `[0, i)`.
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Total number of 1-bits.
    pub fn count_ones(&self) -> usize {
        *self.counts.last().unwrap() as usize
    }

    /// Serializes (length + raw words).
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::write_usize(out, self.len);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Decodes a vector written by [`RankBitVec::encode`], advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let len = varint::read_usize(buf, pos)?;
        let n_words = len.div_ceil(64);
        let end = pos
            .checked_add(n_words * 8)
            .ok_or_else(|| FmError::Corrupt("bitvec length overflow".into()))?;
        if end > buf.len() {
            return Err(FmError::Corrupt("bitvec truncated".into()));
        }
        let words: Vec<u64> = buf[*pos..end]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        *pos = end;
        Ok(Self::from_words(words, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn build(bits: &[bool]) -> RankBitVec {
        let mut b = BitVecBuilder::with_capacity(bits.len());
        for &bit in bits {
            b.push(bit);
        }
        b.finish()
    }

    #[test]
    fn rank_small() {
        let bv = build(&[true, false, true, true, false]);
        assert_eq!(bv.rank1(0), 0);
        assert_eq!(bv.rank1(1), 1);
        assert_eq!(bv.rank1(3), 2);
        assert_eq!(bv.rank1(5), 3);
        assert_eq!(bv.rank0(5), 2);
        assert!(bv.get(0) && !bv.get(1));
    }

    #[test]
    fn rank_across_superblocks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let bits: Vec<bool> = (0..5000).map(|_| rng.gen_bool(0.3)).collect();
        let bv = build(&bits);
        let mut expect = 0;
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(bv.rank1(i), expect, "rank1({i})");
            expect += usize::from(b);
        }
        assert_eq!(bv.rank1(bits.len()), expect);
        assert_eq!(bv.count_ones(), expect);
    }

    #[test]
    fn encode_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for n in [0usize, 1, 63, 64, 65, 511, 512, 513, 4097] {
            let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let bv = build(&bits);
            let mut buf = Vec::new();
            bv.encode(&mut buf);
            let mut pos = 0;
            let back = RankBitVec::decode(&buf, &mut pos).unwrap();
            assert_eq!(back, bv);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_decode_rejected() {
        let bv = build(&[true; 1000]);
        let mut buf = Vec::new();
        bv.encode(&mut buf);
        let mut pos = 0;
        assert!(RankBitVec::decode(&buf[..buf.len() - 1], &mut pos).is_err());
    }

    proptest! {
        #[test]
        fn prop_rank_matches_naive(bits in proptest::collection::vec(any::<bool>(), 0..800)) {
            let bv = build(&bits);
            let mut ones = 0usize;
            for i in 0..=bits.len() {
                prop_assert_eq!(bv.rank1(i), ones);
                if i < bits.len() {
                    prop_assert_eq!(bv.get(i), bits[i]);
                    ones += usize::from(bits[i]);
                }
            }
        }
    }
}
