//! Succinct bit vector with O(1) rank, the building block of the wavelet
//! matrix.
//!
//! Bits are stored in `u64` words. Rank queries go through an *interleaved*
//! rank9-style directory (Vigna, *Broadword implementation of rank/select
//! queries*): each 512-bit block owns a pair of directory words — a 64-bit
//! cumulative 1-count before the block, plus seven packed 9-bit sub-counts
//! covering the block's word prefixes — so `rank1` is one directory pair
//! load, one shift/mask, and one masked popcount, with no loop and no
//! branch. The serialized form stores only the raw words — the directory is
//! rebuilt on decode, trading a linear scan (cheap, already in memory) for
//! smaller components and an unchanged on-disk format.

use rottnest_compress::varint;

use crate::{FmError, Result};

const WORDS_PER_BLOCK: usize = 8; // 512-bit blocks
const SUB_MASK: u64 = 0x1FF; // 9-bit sub-count fields

/// An immutable bit vector with rank support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankBitVec {
    len: usize,
    /// `len.div_ceil(64)` — words holding real bits; `words` carries one
    /// extra zero word so boundary ranks read without a bounds branch.
    n_words: usize,
    words: Vec<u64>,
    /// Interleaved rank directory: for block `b`, `dir[2b]` is the number
    /// of ones before the block and `dir[2b+1]` packs seven 9-bit fields,
    /// field `j` (bits `9j..9j+9`) holding the ones in the block's words
    /// `[0, j+1)`. Bit 63 of the packed word is always zero, which makes
    /// the `(t - 1) & 7` shift trick return 0 for the block's first word.
    /// One trailing pair covers ranks landing exactly on a block boundary.
    dir: Vec<u64>,
    /// Total number of ones (the directory's final cumulative count).
    ones: usize,
}

/// Append-only builder for [`RankBitVec`].
#[derive(Debug, Default)]
pub struct BitVecBuilder {
    len: usize,
    words: Vec<u64>,
}

impl BitVecBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder expecting `n` bits.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            len: 0,
            // One extra slot for the rank pad word added by `finish`.
            words: Vec::with_capacity(n.div_ceil(64) + 1),
        }
    }

    /// Appends one bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Finalizes into a rank-ready vector.
    pub fn finish(self) -> RankBitVec {
        RankBitVec::from_words(self.words, self.len)
    }
}

impl RankBitVec {
    fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        let n_words = words.len();
        debug_assert_eq!(n_words, len.div_ceil(64));
        // `rank1(i)`'s word index reaches `n_words` when `i == len` lands on
        // a word boundary, and its block index reaches `n_words / 8`; pad
        // one word and one directory pair so neither needs a branch. The
        // builder and decode paths allocate that extra slot up front so
        // this push never reallocates.
        words.push(0);
        let n_dir_blocks = n_words / WORDS_PER_BLOCK + 1;
        let mut dir = Vec::with_capacity(2 * n_dir_blocks);
        let mut acc = 0u64;
        for chunk in words[..n_words].chunks(WORDS_PER_BLOCK) {
            dir.push(acc);
            let mut sub = 0u64;
            let mut within = 0u64;
            for (t, w) in chunk.iter().enumerate() {
                within += u64::from(w.count_ones());
                if t < WORDS_PER_BLOCK - 1 {
                    sub |= within << (9 * t);
                }
            }
            dir.push(sub);
            acc += within;
        }
        // A full trailing block emits no in-loop pair for the boundary —
        // `chunks` yielded `n_words / 8` chunks and the directory needs
        // `n_words / 8 + 1` pairs; top it up (also covers `n_words == 0`).
        if dir.len() < 2 * n_dir_blocks {
            dir.push(acc);
            dir.push(0);
        }
        Self {
            len,
            n_words,
            words,
            dir,
            ones: acc as usize,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of 1-bits in `[0, i)`: one directory pair load, one packed
    /// sub-count extract, one masked popcount. Branch-free — the `(t-1)&7`
    /// shift maps a block's first word to the packed word's always-zero
    /// bit 63, and an `i` on a word boundary masks its (padded) word to 0.
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let word = i >> 6;
        let t = word & (WORDS_PER_BLOCK - 1);
        let block = word >> 3;
        let base = self.dir[2 * block];
        let sub = (self.dir[2 * block + 1] >> (9 * (t.wrapping_sub(1) & 7))) & SUB_MASK;
        let masked = self.words[word] & ((1u64 << (i & 63)) - 1);
        (base + sub) as usize + masked.count_ones() as usize
    }

    /// Number of 0-bits in `[0, i)`.
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Total number of 1-bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Serializes (length + raw words). The directory is *not* written —
    /// the byte format is identical to the pre-directory layout.
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::write_usize(out, self.len);
        for w in &self.words[..self.n_words] {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Decodes a vector written by [`RankBitVec::encode`], advancing `pos`.
    /// The rank directory is rebuilt here.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let len = varint::read_usize(buf, pos)?;
        let n_words = len.div_ceil(64);
        let end = pos
            .checked_add(n_words * 8)
            .ok_or_else(|| FmError::Corrupt("bitvec length overflow".into()))?;
        if end > buf.len() {
            return Err(FmError::Corrupt("bitvec truncated".into()));
        }
        // One extra slot so `from_words`'s pad push never reallocates.
        let mut words: Vec<u64> = Vec::with_capacity(n_words + 1);
        words.extend(
            buf[*pos..end]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
        );
        *pos = end;
        Ok(Self::from_words(words, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn build(bits: &[bool]) -> RankBitVec {
        let mut b = BitVecBuilder::with_capacity(bits.len());
        for &bit in bits {
            b.push(bit);
        }
        b.finish()
    }

    #[test]
    fn rank_small() {
        let bv = build(&[true, false, true, true, false]);
        assert_eq!(bv.rank1(0), 0);
        assert_eq!(bv.rank1(1), 1);
        assert_eq!(bv.rank1(3), 2);
        assert_eq!(bv.rank1(5), 3);
        assert_eq!(bv.rank0(5), 2);
        assert!(bv.get(0) && !bv.get(1));
    }

    #[test]
    fn rank_across_superblocks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let bits: Vec<bool> = (0..5000).map(|_| rng.gen_bool(0.3)).collect();
        let bv = build(&bits);
        let mut expect = 0;
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(bv.rank1(i), expect, "rank1({i})");
            expect += usize::from(b);
        }
        assert_eq!(bv.rank1(bits.len()), expect);
        assert_eq!(bv.count_ones(), expect);
    }

    #[test]
    fn rank_directory_boundaries() {
        // Every word (64-bit) and block (512-bit) boundary is exercised at
        // lengths that land just before, on, and just past the boundary —
        // the directory's sentinel pair, padded word, and `(t-1)&7` shift
        // trick all show up exactly at these points.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in [
            0usize, 1, 63, 64, 65, 127, 128, 129, 191, 192, 448, 449, 511, 512, 513, 575, 1023,
            1024, 1025, 1535, 1536, 1537, 4095, 4096, 4097,
        ] {
            let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let bv = build(&bits);
            let naive: Vec<usize> = bits
                .iter()
                .scan(0usize, |acc, &b| {
                    *acc += usize::from(b);
                    Some(*acc)
                })
                .collect();
            let rank_naive = |i: usize| if i == 0 { 0 } else { naive[i - 1] };
            // All word/block boundaries within range, ±1.
            for boundary in (0..=n).step_by(64) {
                for i in boundary.saturating_sub(1)..=(boundary + 1).min(n) {
                    assert_eq!(bv.rank1(i), rank_naive(i), "n={n} rank1({i})");
                }
            }
            assert_eq!(bv.rank1(n), rank_naive(n), "n={n} rank1(len)");
            assert_eq!(bv.count_ones(), rank_naive(n));
        }
    }

    #[test]
    fn encode_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for n in [0usize, 1, 63, 64, 65, 511, 512, 513, 4097] {
            let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let bv = build(&bits);
            let mut buf = Vec::new();
            bv.encode(&mut buf);
            let mut pos = 0;
            let back = RankBitVec::decode(&buf, &mut pos).unwrap();
            assert_eq!(back, bv);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_decode_rejected() {
        let bv = build(&[true; 1000]);
        let mut buf = Vec::new();
        bv.encode(&mut buf);
        let mut pos = 0;
        assert!(RankBitVec::decode(&buf[..buf.len() - 1], &mut pos).is_err());
    }

    proptest! {
        #[test]
        fn prop_rank_matches_naive(bits in proptest::collection::vec(any::<bool>(), 0..1300)) {
            let bv = build(&bits);
            let mut ones = 0usize;
            for i in 0..=bits.len() {
                prop_assert_eq!(bv.rank1(i), ones);
                if i < bits.len() {
                    prop_assert_eq!(bv.get(i), bits[i]);
                    ones += usize::from(bits[i]);
                }
            }
        }

        #[test]
        fn prop_encode_bytes_are_canonical(bits in proptest::collection::vec(any::<bool>(), 0..1300)) {
            // The serialized form must be exactly len-varint + raw LE words,
            // independent of the in-memory directory/padding.
            let bv = build(&bits);
            let mut buf = Vec::new();
            bv.encode(&mut buf);
            let mut expect = Vec::new();
            rottnest_compress::varint::write_usize(&mut expect, bits.len());
            let mut words = vec![0u64; bits.len().div_ceil(64)];
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    words[i / 64] |= 1u64 << (i % 64);
                }
            }
            for w in &words {
                expect.extend_from_slice(&w.to_le_bytes());
            }
            prop_assert_eq!(buf, expect);
        }
    }
}
