//! FM-index for exact substring search over data lake text columns —
//! §V-C2 of the paper.
//!
//! The index is a Burrows-Wheeler transform of the concatenated page texts
//! with a sampled suffix array, adapted to object storage with the
//! componentization approach of §V-B:
//!
//! * [`sais`] — linear-time suffix array construction (SA-IS);
//! * [`bitvec`] / [`wavelet`] — rank structures (wavelet matrices) that make
//!   each BWT block a self-contained component;
//! * [`core`] — the in-memory index ([`FmCore`]): backward search, locate
//!   via LF-mapping;
//! * [`store`] — the componentized on-object-store layout ([`FmIndex`]):
//!   root component holds the C-table, per-block symbol counts and the page
//!   map; each BWT block (wavelet matrix + suffix-array samples) is one
//!   component;
//! * [`merge`] — index compaction by merging BWTs "with bounded interleave
//!   iterations" (Holt & McMillan), §IV-C / §V-C2.
//!
//! Postings are page-granular [`Posting`]s; false positives are impossible
//! for substring search (the index is exact), but the in-situ probe still
//! re-scans matched pages to produce row-level results.

pub mod bitvec;
pub mod core;
pub mod merge;
pub mod sais;
pub mod store;
pub mod wavelet;

pub use crate::core::{concat_documents, sanitize, FmCore, DEFAULT_SAMPLE_RATE};
pub use merge::{merge_fm, MergePolicy};
pub use rottnest_component::Posting;
pub use store::{FmBuilder, FmIndex, FmOptions};

/// Sentinel byte terminating each indexed collection (smallest symbol).
pub const SENTINEL: u8 = 0x00;

/// Separator byte appended after each document.
pub const SEPARATOR: u8 = 0x01;

/// Errors raised by FM-index operations.
#[derive(Debug)]
pub enum FmError {
    /// Pattern contains reserved bytes or is empty.
    BadPattern(String),
    /// Malformed serialized index.
    Corrupt(String),
    /// Merge exceeded its interleave-iteration bound.
    MergeBudget {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// Component-layer failure.
    Component(rottnest_component::ComponentError),
}

impl std::fmt::Display for FmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FmError::BadPattern(m) => write!(f, "bad pattern: {m}"),
            FmError::Corrupt(m) => write!(f, "corrupt fm index: {m}"),
            FmError::MergeBudget { iterations } => {
                write!(
                    f,
                    "interleave merge did not converge within {iterations} iterations"
                )
            }
            FmError::Component(e) => write!(f, "component: {e}"),
        }
    }
}

impl std::error::Error for FmError {}

impl From<rottnest_component::ComponentError> for FmError {
    fn from(e: rottnest_component::ComponentError) -> Self {
        FmError::Component(e)
    }
}

impl From<rottnest_compress::CompressError> for FmError {
    fn from(e: rottnest_compress::CompressError) -> Self {
        FmError::Corrupt(format!("varint: {e}"))
    }
}

impl From<rottnest_object_store::StoreError> for FmError {
    fn from(e: rottnest_object_store::StoreError) -> Self {
        FmError::Component(rottnest_component::ComponentError::Store(e))
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, FmError>;
