#!/usr/bin/env bash
# Search fast-path benchmark: parallel executor + component cache +
# range-coalescing batch reads.
#
# Runs the request-cost workloads (qps_ceiling, fig10 read granularity)
# and the cold-sequential vs warm-parallel comparison, which writes
# BENCH_search.json (queries/sec ceiling, GETs/query, cache hit rate).
set -euo pipefail
cd "$(dirname "$0")/.."

for bin in qps_ceiling fig10_read_granularity bench_search; do
  echo "==> cargo run --release -p rottnest-bench --bin $bin"
  cargo run --release -p rottnest-bench --bin "$bin"
done

echo
echo "bench_search: OK (see BENCH_search.json and results/*.csv)"
