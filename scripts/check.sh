#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
# Referenced from ROADMAP.md ("Tier-1 verify").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo clippy --workspace --release -- -D warnings"
cargo clippy --workspace --release -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "tier-1 gate: OK"
