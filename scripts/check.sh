#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
# Referenced from ROADMAP.md ("Tier-1 verify").
#
# Usage: scripts/check.sh [--fast]
#   --fast            skip the release build and lint debug profile only —
#                     the quick pre-push loop; CI still runs the full gate.
#   CHECK_SKIP_SOAK=1 skip the long chaos-soak, overload-soak, and
#                     outage-soak tests (CI runs them as their own jobs so
#                     the main gate stays fast).
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *)
      echo "unknown flag: $arg (usage: scripts/check.sh [--fast])" >&2
      exit 2
      ;;
  esac
done

echo "==> cargo fmt --all --check"
cargo fmt --all --check

if [ "$FAST" = 1 ]; then
  echo "==> cargo clippy --workspace --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "==> cargo build --release"
  cargo build --release

  echo "==> cargo clippy --workspace --release --all-targets -- -D warnings"
  cargo clippy --workspace --release --all-targets -- -D warnings

  echo "==> cargo bench --no-run (criterion benches compile)"
  cargo bench --workspace --no-run
fi

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

if [ "${CHECK_SKIP_SOAK:-0}" = 1 ]; then
  echo "==> cargo test -q (chaos + overload + outage soaks skipped)"
  cargo test -q -- --skip chaos_soak_lifecycle --skip overload_soak --skip outage_soak
else
  echo "==> cargo test -q"
  cargo test -q
fi

echo "tier-1 gate: OK"
