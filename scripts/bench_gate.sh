#!/usr/bin/env bash
# Bench-regression gate: re-runs the search fast-path and ingest-pipeline
# benchmarks and compares the fresh BENCH_search.json / BENCH_build.json
# against the committed ones at ±15% tolerance (deterministic metrics
# only — simulated request counts and latencies, never host wall clock).
# Fails if any workload's speedup fell or requests ratio rose beyond
# tolerance. The committed files are restored afterwards either way.
set -euo pipefail
cd "$(dirname "$0")/.."

for f in BENCH_search.json BENCH_build.json; do
  if [ ! -f "$f" ]; then
    echo "bench gate: no committed $f to compare against" >&2
    exit 1
  fi
done

search_baseline="$(mktemp)"
build_baseline="$(mktemp)"
cp BENCH_search.json "$search_baseline"
cp BENCH_build.json "$build_baseline"
restore() {
  cp "$search_baseline" BENCH_search.json
  cp "$build_baseline" BENCH_build.json
  rm -f "$search_baseline" "$build_baseline"
}
trap restore EXIT

echo "==> cargo run --release -p rottnest-bench --bin bench_search"
cargo run --release -p rottnest-bench --bin bench_search

echo "==> cargo run --release -p rottnest-bench --bin bench_gate (search)"
cargo run --release -p rottnest-bench --bin bench_gate -- "$search_baseline" BENCH_search.json

echo "==> cargo run --release -p rottnest-bench --bin bench_build"
cargo run --release -p rottnest-bench --bin bench_build

echo "==> cargo run --release -p rottnest-bench --bin bench_gate (build)"
cargo run --release -p rottnest-bench --bin bench_gate -- "$build_baseline" BENCH_build.json

echo "bench_gate: OK"
