#!/usr/bin/env bash
# Bench-regression gate: re-runs the search fast-path, ingest-pipeline,
# serving-overload, and succinct-kernel benchmarks and compares the fresh
# BENCH_search.json / BENCH_build.json / BENCH_serve.json /
# BENCH_kernels.json against the committed ones at ±15% tolerance
# (stable metrics only — simulated request counts and latencies for the
# system benches, capped same-run baseline-vs-optimized CPU ratios for
# the kernels). Fails if any workload's speedup or dedup rate fell, or
# any requests ratio, shed rate, or tail latency rose beyond tolerance.
# The committed files are restored afterwards either way; each freshly
# generated report is also stashed under target/bench-candidates/ so CI
# can upload the candidates as artifacts when the gate fails.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p target/bench-candidates

for f in BENCH_search.json BENCH_build.json BENCH_serve.json BENCH_kernels.json; do
  if [ ! -f "$f" ]; then
    echo "bench gate: no committed $f to compare against" >&2
    exit 1
  fi
done

search_baseline="$(mktemp)"
build_baseline="$(mktemp)"
serve_baseline="$(mktemp)"
kernels_baseline="$(mktemp)"
cp BENCH_search.json "$search_baseline"
cp BENCH_build.json "$build_baseline"
cp BENCH_serve.json "$serve_baseline"
cp BENCH_kernels.json "$kernels_baseline"
restore() {
  cp "$search_baseline" BENCH_search.json
  cp "$build_baseline" BENCH_build.json
  cp "$serve_baseline" BENCH_serve.json
  cp "$kernels_baseline" BENCH_kernels.json
  rm -f "$search_baseline" "$build_baseline" "$serve_baseline" "$kernels_baseline"
}
trap restore EXIT

echo "==> cargo run --release -p rottnest-bench --bin bench_search"
cargo run --release -p rottnest-bench --bin bench_search
cp BENCH_search.json target/bench-candidates/

echo "==> cargo run --release -p rottnest-bench --bin bench_gate (search)"
cargo run --release -p rottnest-bench --bin bench_gate -- "$search_baseline" BENCH_search.json

echo "==> cargo run --release -p rottnest-bench --bin bench_build"
cargo run --release -p rottnest-bench --bin bench_build
cp BENCH_build.json target/bench-candidates/

echo "==> cargo run --release -p rottnest-bench --bin bench_gate (build)"
cargo run --release -p rottnest-bench --bin bench_gate -- "$build_baseline" BENCH_build.json

echo "==> cargo run --release -p rottnest-bench --bin bench_serve"
cargo run --release -p rottnest-bench --bin bench_serve
cp BENCH_serve.json target/bench-candidates/

echo "==> cargo run --release -p rottnest-bench --bin bench_gate (serve)"
cargo run --release -p rottnest-bench --bin bench_gate -- "$serve_baseline" BENCH_serve.json

echo "==> cargo run --release -p rottnest-bench --bin bench_kernels"
cargo run --release -p rottnest-bench --bin bench_kernels
cp BENCH_kernels.json target/bench-candidates/

echo "==> cargo run --release -p rottnest-bench --bin bench_gate (kernels)"
cargo run --release -p rottnest-bench --bin bench_gate -- "$kernels_baseline" BENCH_kernels.json

echo "bench_gate: OK"
