#!/usr/bin/env bash
# Bench-regression gate: re-runs the search fast-path benchmark and
# compares the fresh BENCH_search.json against the committed one at ±15%
# tolerance (deterministic request-count metrics only — never wall clock).
# Fails if any workload's qps_speedup fell or GETs/query ratio rose beyond
# tolerance. The committed file is restored afterwards either way.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ ! -f BENCH_search.json ]; then
  echo "bench gate: no committed BENCH_search.json to compare against" >&2
  exit 1
fi

baseline="$(mktemp)"
cp BENCH_search.json "$baseline"
restore() { cp "$baseline" BENCH_search.json; rm -f "$baseline"; }
trap restore EXIT

echo "==> cargo run --release -p rottnest-bench --bin bench_search"
cargo run --release -p rottnest-bench --bin bench_search

echo "==> cargo run --release -p rottnest-bench --bin bench_gate"
cargo run --release -p rottnest-bench --bin bench_gate -- "$baseline" BENCH_search.json

echo "bench_gate: OK"
