#!/usr/bin/env bash
# Ingest & index-build benchmark: pipelined download+decode, parallel
# builder internals, and parallel page compression, serial vs parallelism 4.
#
# Writes BENCH_build.json (simulated build/ingest wall-clock per index
# kind, rows/s, GET/PUT counts per phase). The parallel pipeline must
# issue byte-for-byte the same requests as the serial one, so the
# build_request_ratio metrics are exactly 1.000; the simulated speedups
# are deterministic too (they derive from modeled request latencies,
# never host wall clock).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release -p rottnest-bench --bin bench_build"
cargo run --release -p rottnest-bench --bin bench_build

echo
echo "bench_build: OK (see BENCH_build.json)"
