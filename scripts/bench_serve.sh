#!/usr/bin/env bash
# Serving-layer benchmark: WFQ admission, deadline shedding, hedged
# probes, and single-flight dedup under open-arrival overload.
#
# Runs the deterministic virtual-time simulator over the six serving
# workloads (under / 2x / 10x the ceiling, hot-key convoy, weighted-fair
# 2x with batch traffic, straggler hedging) and writes BENCH_serve.json
# (tail latencies, shed rate, batch share, hedge-win rate, dedup rate).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release -p rottnest-bench --bin bench_serve"
cargo run --release -p rottnest-bench --bin bench_serve

echo
echo "bench_serve: OK (see BENCH_serve.json)"
