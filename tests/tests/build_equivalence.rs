//! Equivalence proofs for the parallel ingest & index-build pipeline:
//!
//! 1. Lake data files and index files are **bit-identical** whether the
//!    pipeline runs serially (`build_parallelism = 1`, writer
//!    `parallelism = 1`) or fanned out (4 and 8 workers) — fault-free and
//!    at a 5% chaos rate absorbed by the retrying store. Fault-free runs
//!    also issue identical GET/PUT counts at every parallelism.
//! 2. A corrupt footer whose page table points past the object's end is a
//!    clean `RottnestError::Corrupt`, never a slice panic; a truncated
//!    file is a clean error too.
//! 3. A lake file deleted between planning and decode aborts the build
//!    (`RottnestError::Aborted`) with no partial commit — at any
//!    parallelism, fault-free and under chaos.
//! 4. `index_timeout_ms` aborts *mid-build* (the per-file check), again
//!    without a partial commit.
//! 5. Builder downloads and brute-force scan reads are one-shot: they
//!    bypass page-cache admission and are counted as such.
//!
//! Each run builds its own store (a fresh store id), so the process-wide
//! caches are cold for every run and request counts compare equal.

use bytes::Bytes;
use rottnest::{IndexKind, Query, Rottnest, RottnestError};
use rottnest_format::{FileMeta, PageCache, WriterOptions};
use rottnest_integration::*;
use rottnest_lake::{Table, TableConfig};
use rottnest_object_store::{ChaosConfig, MemoryStore, ObjectStore, RetryPolicy};

/// Enough attempts that a 5% per-request fault rate never exhausts the
/// budget (p ≈ 0.05^12 per op), so chaos runs cannot diverge.
fn generous_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        base_backoff_ms: 1,
        max_backoff_ms: 20,
        jitter_seed: 0xEAE_0001,
        verify_short_reads: true,
    }
}

/// Every index kind the build pipeline supports, with its column.
fn all_kinds() -> Vec<(IndexKind, &'static str)> {
    vec![
        (IndexKind::Uuid { key_len: 16 }, "trace_id"),
        (IndexKind::Bloom { key_len: 16 }, "trace_id"),
        (IndexKind::Substring, "body"),
        (IndexKind::Vector { dim: DIM as u32 }, "embedding"),
    ]
}

/// Everything a build run produces, keyed run-independently: file *keys*
/// embed store timestamps (which drift with retries), so files compare by
/// ordinal in listing order — creation order, since keys are
/// `{now_ms:012}-{seq:06}` with both components monotone.
struct BuildRun {
    /// Extension of each index file in listing order (ordinal sanity).
    index_exts: Vec<String>,
    /// Bytes of each index file in listing order.
    index_files: Vec<Bytes>,
    /// Bytes of each lake data file in snapshot order.
    lake_files: Vec<Bytes>,
    /// Cumulative GET / PUT counts over the whole ingest (appends, index
    /// builds, compactions). Only meaningful fault-free.
    gets: u64,
    puts: u64,
    faults: u64,
}

/// Full ingest lifecycle at one parallelism setting: two waves of three
/// appended files, an index build per kind after each wave, then a
/// compaction per kind (fan-in 2 merges the two entries).
fn run_build(parallelism: usize, chaos: Option<ChaosConfig>) -> BuildRun {
    let store = MemoryStore::new();
    store.faults().set_chaos(chaos);

    let table = Table::create(
        store.as_ref(),
        "tbl",
        &schema(),
        TableConfig {
            writer: WriterOptions {
                page_raw_bytes: 2048,
                row_group_rows: 512,
                parallelism,
                ..Default::default()
            },
            retry: generous_retry(),
            ..Default::default()
        },
    )
    .unwrap();

    let mut cfg = rot_config();
    cfg.retry = generous_retry();
    cfg.build_parallelism = parallelism;
    cfg.compact_fanin = 2;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);

    for wave in 0..2u64 {
        for f in 0..3u64 {
            let base = (wave * 3 + f) * 80;
            table.append(&batch(base..base + 80)).unwrap();
        }
        for (kind, column) in all_kinds() {
            rot.index(&table, kind, column).unwrap().unwrap();
        }
    }
    for (kind, column) in all_kinds() {
        let merged = rot.compact(kind, column).unwrap();
        assert_eq!(
            merged.len(),
            1,
            "fan-in 2 must merge the two {kind:?} entries"
        );
    }

    let ops = store.stats();
    store.faults().set_chaos(None);

    let index_objects = store.list("idx/files/").unwrap();
    let index_exts = index_objects
        .iter()
        .map(|m| m.key.rsplit('.').next().unwrap().to_string())
        .collect();
    let index_files = index_objects
        .iter()
        .map(|m| store.get(&m.key).unwrap())
        .collect();
    let lake_files = table
        .snapshot()
        .unwrap()
        .files()
        .map(|f| store.get(&f.path).unwrap())
        .collect();
    BuildRun {
        index_exts,
        index_files,
        lake_files,
        gets: ops.gets,
        puts: ops.puts,
        faults: ops.faults_injected,
    }
}

#[test]
fn build_output_is_bit_identical_across_parallelism() {
    let serial = run_build(1, None);
    // 4 kinds × (2 incremental builds + 1 compacted file left behind for
    // vacuum alongside its sources).
    assert_eq!(serial.index_files.len(), 12, "expected 12 index files");
    assert_eq!(serial.lake_files.len(), 6, "expected 6 lake files");
    // 16 exceeds the worker count on most CI hosts, so it exercises
    // caller-runs and work stealing on a saturated pool.
    for parallelism in [4, 8, 16] {
        let parallel = run_build(parallelism, None);
        assert_eq!(
            parallel.index_exts, serial.index_exts,
            "parallelism {parallelism} changed index-file creation order"
        );
        assert_eq!(
            parallel.index_files, serial.index_files,
            "parallelism {parallelism} changed index-file bytes"
        );
        assert_eq!(
            parallel.lake_files, serial.lake_files,
            "parallelism {parallelism} changed lake-file bytes"
        );
        assert_eq!(
            (parallel.gets, parallel.puts),
            (serial.gets, serial.puts),
            "parallelism {parallelism} changed the request count"
        );
    }
}

#[test]
fn build_output_is_bit_identical_under_chaos() {
    let chaos = || Some(ChaosConfig::uniform(0x5EED_CAFE, 0.05));
    let serial = run_build(1, chaos());
    assert!(serial.faults > 0, "5% chaos should have injected faults");
    for parallelism in [8, 16] {
        let parallel = run_build(parallelism, chaos());
        assert!(parallel.faults > 0, "5% chaos should have injected faults");
        // Request counts include retries (fault patterns differ between
        // runs), so only the produced bytes are part of the chaos contract.
        assert_eq!(parallel.index_exts, serial.index_exts);
        assert_eq!(
            parallel.index_files, serial.index_files,
            "parallelism {parallelism} index bytes diverged from serial under 5% chaos"
        );
        assert_eq!(
            parallel.lake_files, serial.lake_files,
            "parallelism {parallelism} lake bytes diverged from serial under 5% chaos"
        );
    }
}

#[test]
fn corrupt_footer_is_an_error_not_a_panic() {
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 100, 1);
    let path = table
        .snapshot()
        .unwrap()
        .files()
        .next()
        .unwrap()
        .path
        .clone();
    let original = store.get(&path).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());

    // Keep the valid footer but excise the page data it describes: every
    // page location now points past the end of the object.
    let (_, footer_start) = FileMeta::from_tail(&original, original.len() as u64).unwrap();
    let mut corrupt = original[..4].to_vec();
    corrupt.extend_from_slice(&original[footer_start as usize..]);
    assert!(corrupt.len() < original.len());
    store.put(&path, corrupt.into()).unwrap();
    let err = rot.index(&table, IndexKind::Substring, "body").unwrap_err();
    assert!(
        matches!(err, RottnestError::Corrupt(_)),
        "out-of-bounds page table must surface as Corrupt, got {err:?}"
    );

    // A bluntly truncated file (footer gone entirely) is also a clean error.
    store
        .put(&path, original.slice(..original.len() / 2))
        .unwrap();
    rot.index(&table, IndexKind::Substring, "body").unwrap_err();

    // Neither failure left a partial commit behind.
    assert!(rot.meta().scan().unwrap().is_empty());
    assert!(store.list("idx/files/").unwrap().is_empty());
}

/// A lake file vanishing between planning and decode aborts the build with
/// no partial commit: nothing uploaded, nothing committed.
fn vanished_file_aborts(parallelism: usize, chaos: Option<ChaosConfig>) {
    let store = MemoryStore::new();
    let table = Table::create(
        store.as_ref(),
        "tbl",
        &schema(),
        TableConfig {
            retry: generous_retry(),
            ..small_pages()
        },
    )
    .unwrap();
    for f in 0..3u64 {
        table.append(&batch(f * 100..(f + 1) * 100)).unwrap();
    }
    // Delete a manifest-listed data file out from under the planner. The
    // snapshot (and thus the build plan) still names it; the decode GET is
    // what discovers the loss. NotFound is deterministic — the retry layer
    // must not mask it into a timeout even with chaos active.
    let victim = table
        .snapshot()
        .unwrap()
        .files()
        .nth(1)
        .unwrap()
        .path
        .clone();
    store.delete(&victim).unwrap();
    store.faults().set_chaos(chaos);

    let mut cfg = rot_config();
    cfg.retry = generous_retry();
    cfg.build_parallelism = parallelism;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    for (kind, column) in all_kinds() {
        let err = rot.index(&table, kind, column).unwrap_err();
        match &err {
            RottnestError::Aborted(msg) => {
                assert!(msg.contains("vanished"), "unexpected abort cause: {msg}")
            }
            other => panic!("expected Aborted for {kind:?}, got {other:?}"),
        }
    }
    store.faults().set_chaos(None);
    assert!(
        rot.meta().scan().unwrap().is_empty(),
        "no commit may survive an abort"
    );
    assert!(
        store.list("idx/files/").unwrap().is_empty(),
        "no index object may be uploaded"
    );
}

#[test]
fn vanished_file_aborts_without_partial_commit() {
    vanished_file_aborts(1, None);
    vanished_file_aborts(8, None);
    vanished_file_aborts(8, Some(ChaosConfig::uniform(0xDEAD_F11E, 0.05)));
}

/// `index_timeout_ms` aborts between files (the per-file check inside the
/// pipeline consumer), not merely after the whole build pass.
fn timeout_aborts(parallelism: usize, chaos: Option<ChaosConfig>) {
    let store = MemoryStore::new(); // metered: every request advances the sim clock
    let table = Table::create(
        store.as_ref(),
        "tbl",
        &schema(),
        TableConfig {
            retry: generous_retry(),
            ..small_pages()
        },
    )
    .unwrap();
    for f in 0..3u64 {
        table.append(&batch(f * 100..(f + 1) * 100)).unwrap();
    }
    store.faults().set_chaos(chaos);

    let mut cfg = rot_config();
    cfg.retry = generous_retry();
    cfg.build_parallelism = parallelism;
    cfg.index_timeout_ms = 0;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    let err = rot.index(&table, IndexKind::Substring, "body").unwrap_err();
    match &err {
        RottnestError::Aborted(msg) => {
            assert!(msg.contains("timeout"), "unexpected abort cause: {msg}")
        }
        other => panic!("expected timeout Aborted, got {other:?}"),
    }
    store.faults().set_chaos(None);
    assert!(rot.meta().scan().unwrap().is_empty());
    assert!(store.list("idx/files/").unwrap().is_empty());
}

#[test]
fn timeout_aborts_mid_build_without_partial_commit() {
    timeout_aborts(1, None);
    timeout_aborts(8, None);
    timeout_aborts(8, Some(ChaosConfig::uniform(0x7133_0007, 0.05)));
}

#[test]
fn builder_and_brute_scan_reads_bypass_page_cache() {
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 300, 3);
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
    for (kind, column) in all_kinds() {
        rot.index(&table, kind, column).unwrap().unwrap();
    }

    // Index builds downloaded and decoded every page of every lake file,
    // yet admitted none of them: one-shot ingest reads must not evict warm
    // probe pages.
    let ns = store.store_id();
    for f in table.snapshot().unwrap().files() {
        assert_eq!(
            PageCache::global().entries_for_file(ns, &f.path),
            0,
            "builder reads of {} must bypass page-cache admission",
            f.path
        );
    }
    assert!(
        store.stats().page_cache_bypassed > 0,
        "bypassed builder reads must be counted"
    );

    // Brute-force scan pages are one-shot too: scanning an uncovered file
    // reports the bypass in SearchStats and leaves the cache untouched.
    table.append(&batch(300..400)).unwrap();
    let snap = table.snapshot().unwrap();
    let uncovered = snap.files().last().unwrap().path.clone();
    let key = trace_id(350);
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 1 },
        )
        .unwrap();
    assert_eq!(out.matches.len(), 1, "row 350 lives in the uncovered file");
    assert!(out.stats.files_brute_scanned > 0);
    assert!(
        out.stats.page_cache_bypassed > 0,
        "brute-scan bypasses must be reported in SearchStats"
    );
    assert_eq!(
        PageCache::global().entries_for_file(ns, &uncovered),
        0,
        "brute-scanned pages must not be admitted"
    );
}
