//! Overload soak: open-arrival traffic at several times the service's
//! concurrency ceiling, under 5% seeded chaos, with tenant budgets, a
//! mix of absent, tight, and generous deadlines, both WFQ classes
//! (half the tenants submit batch-class work), and hedged probes
//! enabled. The service must
//!
//! * never deadlock (the test completing is the proof),
//! * return bit-identical results for every admitted query — WFQ
//!   reordering and hedge lanes may change *when* and *how* a query
//!   runs, never what it returns,
//! * fail every refused or aborted query with a *typed* error
//!   (`Overloaded` or `DeadlineExceeded`) — nothing else leaks out,
//! * leave every process-wide cache unpoisoned: once the storm passes, a
//!   direct unthrottled client still reproduces the fault-free baseline.
//!
//! The nightly soak lane raises `SOAK_ITERS` (per-thread iterations,
//! default 20) and `SOAK_FAULT_RATE` (chaos rate, default 0.05), and
//! re-runs the pooled-executor storms at `POOL_SOAK_MULT` (4x) their
//! per-PR iteration counts.
//!
//! Every pool-using test here first pins the shared executor pool to 16
//! workers (`ROTTNEST_POOL_WORKERS`, read once per process), so admission
//! ceilings far above the pool size — 256 concurrent admitted queries —
//! are exercised against a fixed thread budget: concurrency is an
//! admission number, threads are the pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use rottnest::{IndexKind, Query, Rottnest, RottnestError, SearchOutcome};
use rottnest_integration::*;
use rottnest_ivfpq::SearchParams;
use rottnest_lake::{Snapshot, Table, TableConfig};
use rottnest_object_store::{ChaosConfig, MemoryStore, ObjectStore, RetryPolicy, WorkerPool};
use rottnest_serve::{Admission, AdmissionConfig, QueryClass, QueryService, ServiceConfig};

/// Pins the process-wide pool to 16 workers and returns its actual size.
/// The env var is read once at first pool use, so every test that touches
/// the pool calls this first — whichever runs first wins, and they all
/// ask for the same size.
fn force_pool_16() -> usize {
    std::env::set_var("ROTTNEST_POOL_WORKERS", "16");
    WorkerPool::global().workers()
}

/// Live thread count of this process (`/proc/self/task` has one entry
/// per thread).
fn process_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

/// Per-thread iteration count, nightly-tunable via `SOAK_ITERS`.
fn soak_iters() -> usize {
    std::env::var("SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

/// Pooled-storm per-client iterations: `base` on a PR lane, multiplied
/// by `POOL_SOAK_MULT` in the nightly lane (which runs at 4x).
fn pool_storm_iters(base: usize) -> usize {
    std::env::var("POOL_SOAK_MULT")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(base, |m| base * m.max(1))
}

/// Chaos fault rate, nightly-tunable via `SOAK_FAULT_RATE`.
fn soak_fault_rate() -> f64 {
    std::env::var("SOAK_FAULT_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05)
}

/// Generous retry budget so 5% chaos is always absorbed, never surfaced —
/// any non-typed error escaping the service is then a real bug.
fn soak_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 16,
        base_backoff_ms: 1,
        max_backoff_ms: 20,
        jitter_seed: 0x50AC,
        verify_short_reads: true,
    }
}

/// `(path, row, score bits)` triples, sorted — bit-identity within one
/// store universe.
fn norm(out: &SearchOutcome) -> Vec<(String, u64, Option<u32>)> {
    let mut v: Vec<_> = out
        .matches
        .iter()
        .map(|m| (m.path.clone(), m.row, m.score.map(f32::to_bits)))
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn overload_soak_sheds_typed_and_admits_bit_identical() {
    force_pool_16();
    let store = MemoryStore::new();
    let table = Table::create(
        store.as_ref(),
        "tbl",
        &schema(),
        TableConfig {
            retry: soak_policy(),
            ..small_pages()
        },
    )
    .unwrap();
    table.append(&batch(0..100)).unwrap();
    table.append(&batch(100..200)).unwrap();

    let mut cfg = rot_config();
    cfg.retry = soak_policy();
    // Hedging on, default pressure threshold: tight-deadline queries may
    // race backup lanes mid-storm. Matches must stay bit-identical.
    cfg.search.hedge = true;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Vector { dim: DIM as u32 }, "embedding")
        .unwrap()
        .unwrap();
    let snap: Snapshot = table.snapshot().unwrap();

    // The standing query pool: indexed hit, absent key (brute + neg
    // cache), substring, and a vector ranking.
    let present = trace_id(42);
    let absent = trace_id(9999);
    let qvec = embedding(7);
    let pool: Vec<(&str, Query<'_>)> = vec![
        (
            "trace_id",
            Query::UuidEq {
                key: &present,
                k: 4,
            },
        ),
        ("trace_id", Query::UuidEq { key: &absent, k: 4 }),
        (
            "body",
            Query::Substring {
                pattern: b"status S001",
                k: 64,
            },
        ),
        (
            "embedding",
            Query::VectorNn {
                query: &qvec,
                params: SearchParams {
                    k: 8,
                    nprobe: 16,
                    refine: 64,
                },
            },
        ),
    ];

    // Fault-free baseline, straight through the client.
    let baseline: Vec<Vec<(String, u64, Option<u32>)>> = pool
        .iter()
        .map(|(col, q)| norm(&rot.search(&table, &snap, col, q).unwrap()))
        .collect();
    assert_eq!(baseline[0].len(), 1, "unique key hit");
    assert!(baseline[1].is_empty(), "absent key");
    assert_eq!(baseline[2].len(), 6, "status S001 every 37 rows");
    assert_eq!(baseline[3].len(), 8, "vector top-k");

    // The storm: 16 workers against 2 slots + 2 queue spots, per-tenant
    // budgets, chaos at 5%.
    store
        .faults()
        .set_chaos(Some(ChaosConfig::uniform(0xBAD5EED, soak_fault_rate())));
    let service = QueryService::new(
        &rot,
        ServiceConfig {
            admission: AdmissionConfig {
                max_concurrent: 2,
                max_queued: 2,
                expected_service_ms: 10,
                ..AdmissionConfig::default()
            },
            tenant_limit_per_sec: 5,
            default_timeout_ms: None,
        },
    );

    const THREADS: usize = 16;
    let iters = soak_iters();
    let barrier = Barrier::new(THREADS);
    let untyped_errors = AtomicUsize::new(0);
    let wrong_results = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let shed_seen = AtomicUsize::new(0);
    let deadline_seen = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let service = &service;
            let table = &table;
            let snap = &snap;
            let pool = &pool;
            let baseline = &baseline;
            let store = &store;
            let barrier = &barrier;
            let untyped_errors = &untyped_errors;
            let wrong_results = &wrong_results;
            let completed = &completed;
            let shed_seen = &shed_seen;
            let deadline_seen = &deadline_seen;
            s.spawn(move || {
                barrier.wait();
                for i in 0..iters {
                    let which = (t + i) % pool.len();
                    let (col, q) = &pool[which];
                    let tenant = format!("tenant-{}", t % 4);
                    // Tenants 0 and 1 are interactive, 2 and 3 batch —
                    // both classes storm the same WFQ gate.
                    let class = if t % 4 >= 2 {
                        QueryClass::Batch
                    } else {
                        QueryClass::Interactive
                    };
                    // Mix of deadlines: most unbounded, some tight, some
                    // already expired at arrival.
                    let deadline = match i % 5 {
                        0 => Some(store.now_ms() + 60),
                        1 => Some(store.now_ms().saturating_sub(1)),
                        _ => None,
                    };
                    match service.query_with_class(table, snap, col, q, &tenant, deadline, class) {
                        Ok(out) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            if norm(&out) != baseline[which] {
                                wrong_results.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(RottnestError::Overloaded { .. }) => {
                            shed_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(RottnestError::DeadlineExceeded { .. }) => {
                            deadline_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            untyped_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    store.faults().set_chaos(None);

    assert_eq!(
        untyped_errors.load(Ordering::Relaxed),
        0,
        "only Overloaded / DeadlineExceeded may escape the service"
    );
    assert_eq!(
        wrong_results.load(Ordering::Relaxed),
        0,
        "every admitted query must be bit-identical to the baseline"
    );
    let total = (THREADS * iters) as u64;
    let stats = service.stats();
    assert_eq!(
        stats.admitted + stats.queries_shed,
        total,
        "every attempt is either admitted or shed"
    );
    assert!(
        stats.queries_shed > 0,
        "16 workers / 4 tenants at 5 q/s per tenant must trip budgets"
    );
    assert_eq!(
        stats.queries_shed,
        shed_seen.load(Ordering::Relaxed) as u64,
        "service accounting must match observed typed sheds"
    );
    assert_eq!(
        stats.deadline_aborts,
        deadline_seen.load(Ordering::Relaxed) as u64,
        "service accounting must match observed deadline aborts"
    );
    assert_eq!(stats.completed, completed.load(Ordering::Relaxed) as u64);
    assert!(
        stats.admitted_batch > 0,
        "WFQ must not starve the batch class: half the workers are batch"
    );
    assert!(
        stats.admitted_batch < stats.admitted,
        "interactive work was admitted too"
    );

    // The storm has passed: a direct client still sees the exact
    // baseline — no cache was poisoned by sheds, aborts, or dedup.
    for ((col, q), want) in pool.iter().zip(&baseline) {
        let out = rot.search(&table, &snap, col, q).unwrap();
        assert_eq!(&norm(&out), want, "post-soak divergence on {col}");
    }
}

/// 256 admitted queries at once on a 16-worker pool: `max_concurrent` is
/// an admission bound, not a thread count. Every query completes (or
/// fails typed), results stay bit-identical, and the process never grows
/// past the client threads plus the fixed pool — the old
/// thread-per-fan-out executor would have spawned thousands.
#[test]
fn pool_decouples_admission_ceiling_from_thread_count() {
    let pool_workers = force_pool_16();
    const CLIENTS: usize = 256;

    let store = MemoryStore::new();
    let table = Table::create(
        store.as_ref(),
        "tbl",
        &schema(),
        TableConfig {
            retry: soak_policy(),
            ..small_pages()
        },
    )
    .unwrap();
    table.append(&batch(0..100)).unwrap();
    table.append(&batch(100..200)).unwrap();

    let mut cfg = rot_config();
    cfg.retry = soak_policy();
    cfg.search.parallelism = 8;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    // One file the indexes never saw, so some queries also brute-scan —
    // a nested fan-out inside the admitted query's own fan-out.
    table.append(&batch(200..300)).unwrap();
    let snap: Snapshot = table.snapshot().unwrap();

    let present = trace_id(42);
    let pool: Vec<(&str, Query<'_>)> = vec![
        (
            "trace_id",
            Query::UuidEq {
                key: &present,
                k: 4,
            },
        ),
        (
            "body",
            Query::Substring {
                pattern: b"status S001",
                k: 64,
            },
        ),
    ];
    let baseline: Vec<Vec<(String, u64, Option<u32>)>> = pool
        .iter()
        .map(|(col, q)| norm(&rot.search(&table, &snap, col, q).unwrap()))
        .collect();
    assert_eq!(baseline[0].len(), 1, "unique key hit");
    assert!(!baseline[1].is_empty(), "substring hits exist");

    // Admission ceiling 16× the pool: all 256 clients hold permits at
    // once; their fan-outs share the 16 workers (caller-runs when full).
    let service = QueryService::new(
        &rot,
        ServiceConfig {
            admission: AdmissionConfig {
                max_concurrent: CLIENTS,
                max_queued: 64,
                expected_service_ms: 10,
                ..AdmissionConfig::default()
            },
            tenant_limit_per_sec: 0,
            default_timeout_ms: None,
        },
    );

    let iters = pool_storm_iters(2);
    let barrier = Barrier::new(CLIENTS);
    let untyped_errors = AtomicUsize::new(0);
    let wrong_results = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let shed_seen = AtomicUsize::new(0);
    let max_threads = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let service = &service;
            let table = &table;
            let snap = &snap;
            let pool = &pool;
            let baseline = &baseline;
            let store = &store;
            let barrier = &barrier;
            let untyped_errors = &untyped_errors;
            let wrong_results = &wrong_results;
            let completed = &completed;
            let shed_seen = &shed_seen;
            let max_threads = &max_threads;
            s.spawn(move || {
                barrier.wait();
                for i in 0..iters {
                    let which = (t + i) % pool.len();
                    let (col, q) = &pool[which];
                    // A few arrivals carry an already-expired deadline —
                    // the gate must shed them typed, never run them.
                    let deadline = if t % 32 == 0 && i == 1 {
                        Some(store.now_ms().saturating_sub(1))
                    } else {
                        None
                    };
                    let got = service.query_with_class(
                        table,
                        snap,
                        col,
                        q,
                        "tenant",
                        deadline,
                        QueryClass::Interactive,
                    );
                    max_threads.fetch_max(process_threads(), Ordering::Relaxed);
                    match got {
                        Ok(out) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            if norm(&out) != baseline[which] {
                                wrong_results.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(RottnestError::Overloaded { .. })
                        | Err(RottnestError::DeadlineExceeded { .. }) => {
                            shed_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            untyped_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    assert_eq!(untyped_errors.load(Ordering::Relaxed), 0, "typed-only");
    assert_eq!(wrong_results.load(Ordering::Relaxed), 0, "bit-identity");
    let stats = service.stats();
    assert_eq!(
        stats.admitted + stats.queries_shed,
        (CLIENTS * iters) as u64,
        "every attempt is either admitted or shed"
    );
    assert_eq!(stats.completed, completed.load(Ordering::Relaxed) as u64);
    // `shed_seen` pooled gate sheds with mid-flight deadline aborts: the
    // former count as shed, the latter as admitted-then-aborted.
    assert_eq!(
        stats.queries_shed + stats.deadline_aborts,
        shed_seen.load(Ordering::Relaxed) as u64
    );
    assert!(
        completed.load(Ordering::Relaxed) >= CLIENTS,
        "the unbounded-deadline majority must complete"
    );
    // The thread-budget claim: clients are the test's own threads; the
    // executor adds at most the fixed pool. The slack covers the test
    // harness and any concurrently running sibling tests.
    let ceiling = CLIENTS + pool_workers + 64;
    let peak = max_threads.load(Ordering::Relaxed);
    assert!(
        peak <= ceiling,
        "peak {peak} threads exceeds {CLIENTS} clients + {pool_workers} pool + slack"
    );
}

/// Nested fan-out on a saturated pool never deadlocks: 32 concurrent
/// queries, each fanning out at parallelism 16 over files whose brute
/// scans hedge onto the same 16-worker pool (query → file scan → hedged
/// second lane, three levels deep). Caller-runs guarantees progress —
/// the test completing is the proof — and results stay bit-identical.
#[test]
fn nested_fanout_on_saturated_pool_never_deadlocks() {
    force_pool_16();
    const CLIENTS: usize = 32;

    let store = MemoryStore::new();
    let table = Table::create(
        store.as_ref(),
        "tbl",
        &schema(),
        TableConfig {
            retry: soak_policy(),
            ..small_pages()
        },
    )
    .unwrap();
    table.append(&batch(0..100)).unwrap();
    table.append(&batch(100..200)).unwrap();

    let mut cfg = rot_config();
    cfg.retry = soak_policy();
    cfg.search.parallelism = 16;
    // Force-hedge every scan unit so each nested file scan also offers a
    // backup lane to the already-saturated pool.
    cfg.search.hedge = true;
    cfg.search.hedge_threshold_pct = u32::MAX;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    // Four files the index never saw: every query brute-scans all four.
    for f in 2..6u64 {
        table.append(&batch(f * 100..(f + 1) * 100)).unwrap();
    }
    let snap: Snapshot = table.snapshot().unwrap();
    let q = Query::Substring {
        pattern: b"status S001",
        k: 64,
    };
    let baseline = norm(&rot.search(&table, &snap, "body", &q).unwrap());
    assert!(!baseline.is_empty());

    let service = QueryService::new(
        &rot,
        ServiceConfig {
            admission: AdmissionConfig {
                max_concurrent: CLIENTS,
                max_queued: 8,
                expected_service_ms: 10,
                ..AdmissionConfig::default()
            },
            tenant_limit_per_sec: 0,
            default_timeout_ms: None,
        },
    );

    let iters = pool_storm_iters(4);
    let barrier = Barrier::new(CLIENTS);
    let failures = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let service = &service;
            let table = &table;
            let snap = &snap;
            let q = &q;
            let baseline = &baseline;
            let store = &store;
            let barrier = &barrier;
            let failures = &failures;
            s.spawn(move || {
                barrier.wait();
                for _ in 0..iters {
                    // A generous deadline arms the hedge trigger without
                    // ever expiring.
                    let deadline = Some(store.now_ms() + 3_600_000);
                    match service.query_with_class(
                        table,
                        snap,
                        "body",
                        q,
                        "tenant",
                        deadline,
                        QueryClass::Interactive,
                    ) {
                        Ok(out) if norm(&out) == *baseline => {}
                        other => {
                            eprintln!("nested fanout diverged: {other:?}");
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    assert_eq!(
        failures.load(Ordering::Relaxed),
        0,
        "every nested fan-out query must complete bit-identical"
    );
    let stats = service.stats();
    assert!(
        stats.search.hedged_scans > 0,
        "forced threshold must hedge brute scans mid-storm: {stats:?}"
    );
}

/// Parks `n` interactive waiters for `tenant` on `adm`, returning once
/// all are queued; each logs its tenant on dispatch and releases.
fn park_tenant<'s, 'e>(
    s: &'s std::thread::Scope<'s, 'e>,
    adm: &'e Admission,
    tenant: &'static str,
    n: usize,
    order: &'e std::sync::Mutex<Vec<&'static str>>,
) {
    let parked_before = adm.occupancy().1;
    for _ in 0..n {
        s.spawn(move || {
            let p = adm
                .admit_flow(0, None, QueryClass::Interactive, Some(tenant))
                .unwrap();
            order.lock().unwrap().push(tenant);
            drop(p);
        });
    }
    while adm.occupancy().1 < parked_before + n {
        std::thread::yield_now();
    }
}

/// Two-tenant starvation: a heavy tenant (weight 7) flooding the gate
/// cannot starve an unweighted tenant on the class's default flow. Tags
/// are assigned while everyone is parked, so dispatch order is exactly
/// the WFQ merge — deterministic, not timing-dependent.
#[test]
fn weighted_tenant_cannot_starve_the_default_flow() {
    let adm = Admission::new(AdmissionConfig {
        max_concurrent: 1,
        max_queued: 32,
        expected_service_ms: 10,
        interactive_weight: 4,
        batch_weight: 1,
        tenant_weights: vec![("heavy".to_string(), 7)],
    });
    let gate = adm.admit(0, None).unwrap();
    let order: std::sync::Mutex<Vec<&'static str>> = std::sync::Mutex::new(Vec::new());

    std::thread::scope(|s| {
        park_tenant(s, &adm, "heavy", 14, &order);
        park_tenant(s, &adm, "light", 2, &order);
        drop(gate);
    });

    let order = order.into_inner().unwrap();
    assert_eq!(order.len(), 16);
    // Heavy runs at 4×7=28, light at the class default 4: light's tags
    // fall at 7/28 and 14/28 quanta, heavy's at k/28 — the merge serves
    // one light query in each window of eight dispatches.
    let light_positions: Vec<usize> = order
        .iter()
        .enumerate()
        .filter(|(_, t)| **t == "light")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        light_positions,
        vec![7, 15],
        "light tenant must get its 1-in-8 share, not starve: {order:?}"
    );
}
