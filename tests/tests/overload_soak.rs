//! Overload soak: open-arrival traffic at several times the service's
//! concurrency ceiling, under 5% seeded chaos, with tenant budgets, a
//! mix of absent, tight, and generous deadlines, both WFQ classes
//! (half the tenants submit batch-class work), and hedged probes
//! enabled. The service must
//!
//! * never deadlock (the test completing is the proof),
//! * return bit-identical results for every admitted query — WFQ
//!   reordering and hedge lanes may change *when* and *how* a query
//!   runs, never what it returns,
//! * fail every refused or aborted query with a *typed* error
//!   (`Overloaded` or `DeadlineExceeded`) — nothing else leaks out,
//! * leave every process-wide cache unpoisoned: once the storm passes, a
//!   direct unthrottled client still reproduces the fault-free baseline.
//!
//! The nightly soak lane raises `SOAK_ITERS` (per-thread iterations,
//! default 20) and `SOAK_FAULT_RATE` (chaos rate, default 0.05).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use rottnest::{IndexKind, Query, Rottnest, RottnestError, SearchOutcome};
use rottnest_integration::*;
use rottnest_ivfpq::SearchParams;
use rottnest_lake::{Snapshot, Table, TableConfig};
use rottnest_object_store::{ChaosConfig, MemoryStore, ObjectStore, RetryPolicy};
use rottnest_serve::{AdmissionConfig, QueryClass, QueryService, ServiceConfig};

/// Per-thread iteration count, nightly-tunable via `SOAK_ITERS`.
fn soak_iters() -> usize {
    std::env::var("SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

/// Chaos fault rate, nightly-tunable via `SOAK_FAULT_RATE`.
fn soak_fault_rate() -> f64 {
    std::env::var("SOAK_FAULT_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05)
}

/// Generous retry budget so 5% chaos is always absorbed, never surfaced —
/// any non-typed error escaping the service is then a real bug.
fn soak_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 16,
        base_backoff_ms: 1,
        max_backoff_ms: 20,
        jitter_seed: 0x50AC,
        verify_short_reads: true,
    }
}

/// `(path, row, score bits)` triples, sorted — bit-identity within one
/// store universe.
fn norm(out: &SearchOutcome) -> Vec<(String, u64, Option<u32>)> {
    let mut v: Vec<_> = out
        .matches
        .iter()
        .map(|m| (m.path.clone(), m.row, m.score.map(f32::to_bits)))
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn overload_soak_sheds_typed_and_admits_bit_identical() {
    let store = MemoryStore::new();
    let table = Table::create(
        store.as_ref(),
        "tbl",
        &schema(),
        TableConfig {
            retry: soak_policy(),
            ..small_pages()
        },
    )
    .unwrap();
    table.append(&batch(0..100)).unwrap();
    table.append(&batch(100..200)).unwrap();

    let mut cfg = rot_config();
    cfg.retry = soak_policy();
    // Hedging on, default pressure threshold: tight-deadline queries may
    // race backup lanes mid-storm. Matches must stay bit-identical.
    cfg.search.hedge = true;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Vector { dim: DIM as u32 }, "embedding")
        .unwrap()
        .unwrap();
    let snap: Snapshot = table.snapshot().unwrap();

    // The standing query pool: indexed hit, absent key (brute + neg
    // cache), substring, and a vector ranking.
    let present = trace_id(42);
    let absent = trace_id(9999);
    let qvec = embedding(7);
    let pool: Vec<(&str, Query<'_>)> = vec![
        (
            "trace_id",
            Query::UuidEq {
                key: &present,
                k: 4,
            },
        ),
        ("trace_id", Query::UuidEq { key: &absent, k: 4 }),
        (
            "body",
            Query::Substring {
                pattern: b"status S001",
                k: 64,
            },
        ),
        (
            "embedding",
            Query::VectorNn {
                query: &qvec,
                params: SearchParams {
                    k: 8,
                    nprobe: 16,
                    refine: 64,
                },
            },
        ),
    ];

    // Fault-free baseline, straight through the client.
    let baseline: Vec<Vec<(String, u64, Option<u32>)>> = pool
        .iter()
        .map(|(col, q)| norm(&rot.search(&table, &snap, col, q).unwrap()))
        .collect();
    assert_eq!(baseline[0].len(), 1, "unique key hit");
    assert!(baseline[1].is_empty(), "absent key");
    assert_eq!(baseline[2].len(), 6, "status S001 every 37 rows");
    assert_eq!(baseline[3].len(), 8, "vector top-k");

    // The storm: 16 workers against 2 slots + 2 queue spots, per-tenant
    // budgets, chaos at 5%.
    store
        .faults()
        .set_chaos(Some(ChaosConfig::uniform(0xBAD5EED, soak_fault_rate())));
    let service = QueryService::new(
        &rot,
        ServiceConfig {
            admission: AdmissionConfig {
                max_concurrent: 2,
                max_queued: 2,
                expected_service_ms: 10,
                ..AdmissionConfig::default()
            },
            tenant_limit_per_sec: 5,
            default_timeout_ms: None,
        },
    );

    const THREADS: usize = 16;
    let iters = soak_iters();
    let barrier = Barrier::new(THREADS);
    let untyped_errors = AtomicUsize::new(0);
    let wrong_results = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let shed_seen = AtomicUsize::new(0);
    let deadline_seen = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let service = &service;
            let table = &table;
            let snap = &snap;
            let pool = &pool;
            let baseline = &baseline;
            let store = &store;
            let barrier = &barrier;
            let untyped_errors = &untyped_errors;
            let wrong_results = &wrong_results;
            let completed = &completed;
            let shed_seen = &shed_seen;
            let deadline_seen = &deadline_seen;
            s.spawn(move || {
                barrier.wait();
                for i in 0..iters {
                    let which = (t + i) % pool.len();
                    let (col, q) = &pool[which];
                    let tenant = format!("tenant-{}", t % 4);
                    // Tenants 0 and 1 are interactive, 2 and 3 batch —
                    // both classes storm the same WFQ gate.
                    let class = if t % 4 >= 2 {
                        QueryClass::Batch
                    } else {
                        QueryClass::Interactive
                    };
                    // Mix of deadlines: most unbounded, some tight, some
                    // already expired at arrival.
                    let deadline = match i % 5 {
                        0 => Some(store.now_ms() + 60),
                        1 => Some(store.now_ms().saturating_sub(1)),
                        _ => None,
                    };
                    match service.query_with_class(table, snap, col, q, &tenant, deadline, class) {
                        Ok(out) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            if norm(&out) != baseline[which] {
                                wrong_results.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(RottnestError::Overloaded { .. }) => {
                            shed_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(RottnestError::DeadlineExceeded { .. }) => {
                            deadline_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            untyped_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    store.faults().set_chaos(None);

    assert_eq!(
        untyped_errors.load(Ordering::Relaxed),
        0,
        "only Overloaded / DeadlineExceeded may escape the service"
    );
    assert_eq!(
        wrong_results.load(Ordering::Relaxed),
        0,
        "every admitted query must be bit-identical to the baseline"
    );
    let total = (THREADS * iters) as u64;
    let stats = service.stats();
    assert_eq!(
        stats.admitted + stats.queries_shed,
        total,
        "every attempt is either admitted or shed"
    );
    assert!(
        stats.queries_shed > 0,
        "16 workers / 4 tenants at 5 q/s per tenant must trip budgets"
    );
    assert_eq!(
        stats.queries_shed,
        shed_seen.load(Ordering::Relaxed) as u64,
        "service accounting must match observed typed sheds"
    );
    assert_eq!(
        stats.deadline_aborts,
        deadline_seen.load(Ordering::Relaxed) as u64,
        "service accounting must match observed deadline aborts"
    );
    assert_eq!(stats.completed, completed.load(Ordering::Relaxed) as u64);
    assert!(
        stats.admitted_batch > 0,
        "WFQ must not starve the batch class: half the workers are batch"
    );
    assert!(
        stats.admitted_batch < stats.admitted,
        "interactive work was admitted too"
    );

    // The storm has passed: a direct client still sees the exact
    // baseline — no cache was poisoned by sheds, aborts, or dedup.
    for ((col, q), want) in pool.iter().zip(&baseline) {
        let out = rot.search(&table, &snap, col, q).unwrap();
        assert_eq!(&norm(&out), want, "post-soak divergence on {col}");
    }
}
