//! Hedged index probes preserve results bit-for-bit.
//!
//! With `SearchConfig::hedge` on and the threshold forced high, every
//! index probe under a deadline races two lanes. Both lanes evaluate the
//! identical pure probe over shared caches, so the matches must equal a
//! hedge-free client's exactly — hedging may only change latency and the
//! hedge counters. These tests pin that invariant for the trie/bloom,
//! FM, and vector probe paths, plus the trigger edges (no deadline / no
//! hedge flag → no hedged probes).

use rottnest::{IndexKind, Query, Rottnest, SearchOutcome};
use rottnest_integration::*;
use rottnest_ivfpq::SearchParams;
use rottnest_lake::Snapshot;
use rottnest_object_store::{MemoryStore, ObjectStore};

const ROWS: u64 = 200;
const FILES: u64 = 2;

/// `(file ordinal, row, score-bits)` triples, sorted — comparable across
/// stores whose absolute paths differ (paths embed a global sequence).
fn norm(snap: &Snapshot, out: &SearchOutcome) -> Vec<(usize, u64, u32)> {
    let ordinal: std::collections::HashMap<&str, usize> = snap
        .files()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    let mut v: Vec<_> = out
        .matches
        .iter()
        .map(|m| {
            (
                ordinal[m.path.as_str()],
                m.row,
                m.score.unwrap_or(0.0).to_bits(),
            )
        })
        .collect();
    v.sort_unstable();
    v
}

/// Always-hedge configuration: threshold at `u32::MAX` percent of the
/// EWMA means any finite remaining budget triggers the hedge.
fn hedge_config() -> rottnest::RottnestConfig {
    let mut cfg = rot_config();
    cfg.search.hedge = true;
    cfg.search.hedge_threshold_pct = u32::MAX;
    cfg
}

/// One universe per config: same data, same indexes, different executor.
fn universe(hedged: bool) -> (std::sync::Arc<MemoryStore>, rottnest::RottnestConfig) {
    let store = MemoryStore::new();
    let cfg = if hedged { hedge_config() } else { rot_config() };
    (store, cfg)
}

fn run_query(
    store: &MemoryStore,
    cfg: rottnest::RottnestConfig,
    kind: IndexKind,
    column: &str,
    query: &Query<'_>,
) -> (Vec<(usize, u64, u32)>, rottnest::SearchStats) {
    let table = make_table(store, ROWS, FILES);
    let rot = Rottnest::new(store, "idx", cfg);
    rot.index(&table, kind, column).unwrap();
    let snap = table.snapshot().unwrap();
    // A generous deadline: far from expiry, so the search always
    // completes — with the forced threshold it still hedges every probe.
    let deadline = store.now_ms() + 3_600_000;
    let out = rot
        .search_with_deadline(&table, &snap, column, query, Some(deadline))
        .unwrap();
    (norm(&snap, &out), out.stats)
}

#[test]
fn hedged_substring_matches_are_bit_identical() {
    let q = Query::Substring {
        pattern: b"status S001",
        k: 64,
    };
    let (store_h, cfg_h) = universe(true);
    let (store_p, cfg_p) = universe(false);
    let (hedged, hstats) = run_query(&store_h, cfg_h, IndexKind::Substring, "body", &q);
    let (plain, pstats) = run_query(&store_p, cfg_p, IndexKind::Substring, "body", &q);

    assert_eq!(hedged, plain, "hedging changed matches");
    assert_eq!(
        hedged.len(),
        6,
        "status S001 in rows {{1,38,75,112,149,186}}"
    );
    assert!(
        hstats.hedged_probes >= 1,
        "forced threshold must hedge at least one probe: {hstats:?}"
    );
    assert!(hstats.hedge_wins <= hstats.hedged_probes);
    assert!(hstats.hedge_cancels <= hstats.hedged_probes);
    assert_eq!(pstats.hedged_probes, 0, "hedge off must never hedge");
    assert_eq!(pstats.hedge_wins, 0);
}

#[test]
fn hedged_uuid_matches_are_bit_identical() {
    let key = trace_id(42);
    let q = Query::UuidEq { key: &key, k: 8 };
    let (store_h, cfg_h) = universe(true);
    let (store_p, cfg_p) = universe(false);
    let (hedged, hstats) = run_query(
        &store_h,
        cfg_h,
        IndexKind::Uuid { key_len: 16 },
        "trace_id",
        &q,
    );
    let (plain, _) = run_query(
        &store_p,
        cfg_p,
        IndexKind::Uuid { key_len: 16 },
        "trace_id",
        &q,
    );
    assert_eq!(hedged, plain, "hedging changed matches");
    assert!(!hedged.is_empty(), "trace 42 exists");
    assert!(hstats.hedged_probes >= 1, "stats: {hstats:?}");
}

#[test]
fn hedged_vector_matches_are_bit_identical() {
    let qvec = embedding(7);
    let q = Query::VectorNn {
        query: &qvec,
        params: SearchParams {
            k: 10,
            nprobe: 4,
            refine: 16,
        },
    };
    let (store_h, cfg_h) = universe(true);
    let (store_p, cfg_p) = universe(false);
    let (hedged, hstats) = run_query(
        &store_h,
        cfg_h,
        IndexKind::Vector { dim: DIM as u32 },
        "embedding",
        &q,
    );
    let (plain, _) = run_query(
        &store_p,
        cfg_p,
        IndexKind::Vector { dim: DIM as u32 },
        "embedding",
        &q,
    );
    assert_eq!(hedged, plain, "hedging changed vector matches");
    assert_eq!(hedged.len(), 10);
    assert!(hstats.hedged_probes >= 1, "stats: {hstats:?}");
}

/// Builds the `universe` table, indexes it, then appends two files the
/// index never saw and queries a key living in the second one with
/// `k = 2` — the index cannot meet `k`, so both uncovered files scan by
/// brute force (per-file scan units hedge under the same trigger).
fn run_brute_query(
    store: &MemoryStore,
    cfg: rottnest::RottnestConfig,
) -> (Vec<(usize, u64, u32)>, rottnest::SearchStats) {
    let table = make_table(store, ROWS, FILES);
    let rot = Rottnest::new(store, "idx", cfg);
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap();
    let base = ROWS * FILES;
    table.append(&batch(base..base + 100)).unwrap();
    table.append(&batch(base + 100..base + 200)).unwrap();
    let snap = table.snapshot().unwrap();
    let key = trace_id(base + 150);
    let q = Query::UuidEq { key: &key, k: 2 };
    let deadline = store.now_ms() + 3_600_000;
    let out = rot
        .search_with_deadline(&table, &snap, "trace_id", &q, Some(deadline))
        .unwrap();
    (norm(&snap, &out), out.stats)
}

#[test]
fn hedged_brute_scans_are_bit_identical() {
    let (store_h, cfg_h) = universe(true);
    let (store_p, cfg_p) = universe(false);
    let (hedged, hstats) = run_brute_query(&store_h, cfg_h);
    let (plain, pstats) = run_brute_query(&store_p, cfg_p);

    assert_eq!(hedged, plain, "hedging changed brute-scan matches");
    assert_eq!(hedged.len(), 1, "the key lives in exactly one file");
    assert!(
        hstats.files_brute_scanned >= 2,
        "both uncovered files must brute-scan: {hstats:?}"
    );
    assert!(
        hstats.hedged_scans >= 1,
        "forced threshold must hedge at least one brute scan: {hstats:?}"
    );
    assert!(
        hstats.hedged_scans <= hstats.hedged_probes,
        "hedged scans are a subset of hedged probes: {hstats:?}"
    );
    assert_eq!(pstats.hedged_scans, 0, "hedge off must never hedge scans");
    assert_eq!(pstats.hedged_probes, 0);
}

#[test]
fn no_deadline_means_no_hedging_even_when_enabled() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), ROWS, FILES);
    let rot = Rottnest::new(store.as_ref(), "idx", hedge_config());
    rot.index(&table, IndexKind::Substring, "body").unwrap();
    let snap = table.snapshot().unwrap();
    let out = rot
        .search(
            &table,
            &snap,
            "body",
            &Query::Substring {
                pattern: b"status S001",
                k: 64,
            },
        )
        .unwrap();
    assert_eq!(out.stats.hedged_probes, 0, "no deadline, no hedge");
    assert_eq!(out.matches.len(), 6);
}
