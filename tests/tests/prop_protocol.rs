//! Randomized protocol fuzz: seeded sequences of lake + Rottnest operations,
//! with invariants checked after every step and index-vs-brute equivalence
//! checked at the end. (A light-weight model-based test: the brute-force
//! scanner *is* the model.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rottnest::invariants::verify_all;
use rottnest::{IndexKind, Query, Rottnest};
use rottnest_baselines::BruteForce;
use rottnest_integration::*;
use rottnest_lake::Table;
use rottnest_object_store::{FaultKind, MemoryStore};

fn run_sequence(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let store = MemoryStore::unmetered();
    let table = Table::create(store.as_ref(), "tbl", &schema(), small_pages()).unwrap();
    let mut cfg = rot_config();
    cfg.index_timeout_ms = 10; // aggressive GC eligibility
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);

    let mut next_row = 0u64;
    table.append(&batch(0..40)).unwrap();
    next_row += 40;
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap();

    for step in 0..24 {
        match rng.gen_range(0..8u32) {
            0 | 1 => {
                let n = rng.gen_range(10u64..40);
                table.append(&batch(next_row..next_row + n)).unwrap();
                next_row += n;
            }
            2 => {
                // Delete a few random rows of a random file.
                let snap = table.snapshot().unwrap();
                let files: Vec<_> = snap.files().cloned().collect();
                let f = &files[rng.gen_range(0..files.len())];
                let rows: Vec<u64> = (0..3).map(|_| rng.gen_range(0..f.rows)).collect();
                let _ = table.delete_rows(&f.path, &rows);
            }
            3 => {
                let _ = table.compact(u64::MAX);
            }
            4 => {
                let _ = rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id");
            }
            5 => {
                let _ = rot.compact(IndexKind::Uuid { key_len: 16 }, "trace_id");
            }
            6 => {
                let _ = rot.vacuum(&table);
            }
            _ => {
                // Crash a random mutation mid-flight.
                let pattern = ["idx/files", "idx/meta"][rng.gen_range(0..2usize)];
                store
                    .faults()
                    .arm(FaultKind::FailPutMatching(pattern.into()));
                let _ = rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id");
                let _ = rot.compact(IndexKind::Uuid { key_len: 16 }, "trace_id");
                store.faults().disarm_all();
            }
        }
        verify_all(store.as_ref(), "idx")
            .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
    }

    // Final equivalence vs the brute-force model for a sample of keys.
    let snap = table.snapshot().unwrap();
    let bf = BruteForce::new(&table, snap.clone());
    for _ in 0..12 {
        let i = rng.gen_range(0..next_row);
        let key = trace_id(i);
        let r = rot
            .search(
                &table,
                &snap,
                "trace_id",
                &Query::UuidEq { key: &key, k: 10 },
            )
            .unwrap();
        let (b, _) = bf.scan_uuid("trace_id", &key, 10).unwrap();
        let mut rp: Vec<(String, u64)> =
            r.matches.iter().map(|m| (m.path.clone(), m.row)).collect();
        let mut bp: Vec<(String, u64)> = b.iter().map(|m| (m.path.clone(), m.row)).collect();
        rp.sort();
        bp.sort();
        assert_eq!(rp, bp, "seed {seed}, key {i}");
    }
}

#[test]
fn fuzz_protocol_seeds_0_to_7() {
    for seed in 0..8 {
        run_sequence(seed);
    }
}

#[test]
fn fuzz_protocol_seeds_8_to_15() {
    for seed in 8..16 {
        run_sequence(seed);
    }
}
