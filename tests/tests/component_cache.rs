//! End-to-end behaviour of the process-wide component cache:
//!
//! * overwriting an object invalidates its cached open entry (the reopen
//!   revalidates with a HEAD and falls back to a real read), and
//!   components cached under the old directory can never serve the new
//!   file (the directory-hash validator partitions generations);
//! * a cache-warm repeat of a search issues strictly fewer GETs than the
//!   cold run and reports its hits in `SearchStats`.

use rottnest::{IndexKind, Query, Rottnest};
use rottnest_component::{ComponentCache, ComponentFile, ComponentWriter};
use rottnest_integration::*;
use rottnest_object_store::{MemoryStore, ObjectStore};

fn write_components(store: &dyn ObjectStore, key: &str, parts: &[&[u8]]) {
    let mut w = ComponentWriter::new();
    for p in parts {
        w.add(p.to_vec());
    }
    w.finish_into(store, key).unwrap();
}

#[test]
fn overwrite_invalidates_cached_open_entry() {
    let store = MemoryStore::unmetered();
    // Different sizes so the overwrite is detectable by length (the
    // metadata layer never rewrites an index file in place; equal-length
    // overwrites are out of the stores' versioning model).
    write_components(store.as_ref(), "f.cmp", &[b"generation one", b"aaaa"]);

    let f = ComponentFile::open(store.as_ref(), "f.cmp").unwrap();
    assert_eq!(&f.component(0).unwrap()[..], b"generation one");

    write_components(
        store.as_ref(),
        "f.cmp",
        &[b"generation two is longer", b"bbbbbbbb"],
    );

    // The reopen revalidates (HEAD length mismatch), drops the stale open
    // entry, and reads the new directory; the old cached component can
    // not leak through because its validator hash died with the old
    // directory.
    let f = ComponentFile::open(store.as_ref(), "f.cmp").unwrap();
    assert_eq!(&f.component(0).unwrap()[..], b"generation two is longer");
    assert_eq!(&f.component(1).unwrap()[..], b"bbbbbbbb");
}

#[test]
fn reopen_of_unchanged_file_skips_the_get() {
    let store = MemoryStore::new();
    write_components(store.as_ref(), "g.cmp", &[b"stable bytes", b"more"]);

    let f = ComponentFile::open(store.as_ref(), "g.cmp").unwrap();
    assert_eq!(&f.component(0).unwrap()[..], b"stable bytes");

    let before = store.stats();
    let f = ComponentFile::open(store.as_ref(), "g.cmp").unwrap();
    assert_eq!(&f.component(0).unwrap()[..], b"stable bytes");
    let delta = store.stats().since(&before);
    assert_eq!(delta.gets, 0, "warm reopen must not GET");
    assert_eq!(delta.heads, 1, "warm reopen revalidates with one HEAD");
    assert!(delta.cache_hits >= 2, "open + component served from cache");
    assert!(delta.cache_bytes_saved > 0);
}

#[test]
fn warm_search_issues_strictly_fewer_gets_and_reports_hits() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 200, 2);
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    let snap = table.snapshot().unwrap();
    let query = Query::Substring {
        pattern: b"status S001",
        k: 64,
    };

    // A fresh store id guarantees nothing for this store is cached yet,
    // but clear anyway so the cold run is cold even if the test order or
    // helper internals change.
    ComponentCache::global().clear();

    let before = store.stats();
    let cold = rot.search(&table, &snap, "body", &query).unwrap();
    let cold_gets = store.stats().since(&before).gets;

    let before = store.stats();
    let warm = rot.search(&table, &snap, "body", &query).unwrap();
    let warm_gets = store.stats().since(&before).gets;

    assert_eq!(warm.matches, cold.matches);
    // The cold run misses on every first touch (it may still hit on
    // repeat touches within the query); the warm run never misses.
    assert!(cold.stats.cache_misses > 0);
    assert_eq!(warm.stats.cache_misses, 0, "warm run must not miss");
    assert!(warm.stats.cache_hits > 0, "warm run must hit the cache");
    assert!(
        warm_gets < cold_gets,
        "warm search must issue strictly fewer GETs ({warm_gets} vs {cold_gets})"
    );
    assert!(warm.stats.cache_bytes_saved > 0);
}
