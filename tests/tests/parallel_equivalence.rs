//! Equivalence proofs for the request-cost optimizations:
//!
//! 1. The parallel search executor returns results (and `SearchStats`)
//!    identical to sequential execution — fault-free and at a 5% chaos
//!    rate absorbed by the retrying store.
//! 2. Coalesced `get_ranges` returns byte-identical results to issuing
//!    each range as its own `get_range` — again fault-free and under
//!    chaos through the retry decorator.
//!
//! Each run builds its own store (a fresh store id), so the process-wide
//! component and page caches are cold for every run and cache stats
//! compare equal. The suite runs its query list **twice** per store: the
//! first pass is cold, the second hits warm caches — so the equivalence
//! proof covers the page-cache hit path (zero probe GETs) at every
//! parallelism level and under chaos, not just cold reads.

use rottnest::{IndexKind, Query, Rottnest, SearchOutcome, SearchStats};
use rottnest_integration::*;
use rottnest_ivfpq::SearchParams;
use rottnest_lake::{Snapshot, Table, TableConfig};
use rottnest_object_store::{
    ChaosConfig, MemoryStore, ObjectStore, RangeRequest, RetryPolicy, RetryStore,
};

/// Enough attempts that a 5% per-request fault rate never exhausts the
/// budget (p ≈ 0.05^12 per op), so chaos runs cannot degrade and diverge.
fn generous_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        base_backoff_ms: 1,
        max_backoff_ms: 20,
        jitter_seed: 0xEAE_0001,
        verify_short_reads: true,
    }
}

/// A run-independent view of one match: (file ordinal in manifest order,
/// row, score bits). Paths embed store timestamps which may drift between
/// runs; the ordinal does not.
type Norm = (usize, u64, Option<u32>);

fn normalize(snap: &Snapshot, out: &SearchOutcome) -> Vec<Norm> {
    let ordinal: std::collections::HashMap<&str, usize> = snap
        .files()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    out.matches
        .iter()
        .map(|m| (ordinal[m.path.as_str()], m.row, m.score.map(f32::to_bits)))
        .collect()
}

/// Runs the full query suite at `parallelism` on a fresh store: 5 files of
/// 100 rows, the first 3 indexed, the last 2 uncovered (brute-force
/// coverage), rows 3..=5 of the first file deleted after indexing.
fn run_suite(parallelism: usize, chaos: Option<ChaosConfig>) -> Vec<(Vec<Norm>, SearchStats)> {
    let store = MemoryStore::new();
    store.faults().set_chaos(chaos);

    let table = Table::create(
        store.as_ref(),
        "tbl",
        &schema(),
        TableConfig {
            retry: generous_retry(),
            ..small_pages()
        },
    )
    .unwrap();
    for f in 0..3u64 {
        table.append(&batch(f * 100..(f + 1) * 100)).unwrap();
    }

    let mut cfg = rot_config();
    cfg.retry = generous_retry();
    cfg.search.parallelism = parallelism;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Vector { dim: DIM as u32 }, "embedding")
        .unwrap()
        .unwrap();

    // Two files the indexes never saw: the brute-force path must scan them.
    table.append(&batch(300..400)).unwrap();
    table.append(&batch(400..500)).unwrap();
    // Deletions apply at probe time.
    let first = table
        .snapshot()
        .unwrap()
        .files()
        .next()
        .unwrap()
        .path
        .clone();
    table.delete_rows(&first, &[3, 4, 5]).unwrap();

    let snap = table.snapshot().unwrap();
    let qvec = embedding(7);
    let key_hit = trace_id(42);
    let key_brute = trace_id(420);
    let key_deleted = trace_id(3);
    let queries: Vec<(&str, Query<'_>)> = vec![
        // Indexed hit; k unmet, so the two uncovered files brute-scan.
        (
            "trace_id",
            Query::UuidEq {
                key: &key_hit,
                k: 4,
            },
        ),
        // Key lives in an uncovered file: found by brute force alone, and
        // `need` is met mid-scan (the parallel replay must apply the same
        // early cutoff the sequential scan does).
        (
            "trace_id",
            Query::UuidEq {
                key: &key_brute,
                k: 1,
            },
        ),
        // Deleted row: index postings survive, the probe must reject.
        (
            "trace_id",
            Query::UuidEq {
                key: &key_deleted,
                k: 4,
            },
        ),
        // Multi-file substring across indexed and uncovered files.
        (
            "body",
            Query::Substring {
                pattern: b"status S001",
                k: 64,
            },
        ),
        // Small k: brute force exits early inside a file.
        (
            "body",
            Query::Substring {
                pattern: b"host h5",
                k: 3,
            },
        ),
        (
            "embedding",
            Query::VectorNn {
                query: &qvec,
                params: SearchParams {
                    k: 8,
                    nprobe: 16,
                    refine: 64,
                },
            },
        ),
    ];

    // Two passes: cold, then warm (component + page caches populated by
    // the first pass). Both are part of the equivalence contract.
    let mut results = Vec::with_capacity(queries.len() * 2);
    for _pass in 0..2 {
        for (column, query) in &queries {
            let out = rot.search(&table, &snap, column, query).unwrap();
            results.push((normalize(&snap, &out), out.stats));
        }
    }
    results
}

#[test]
fn parallel_results_and_stats_match_sequential() {
    let sequential = run_suite(1, None);
    assert!(
        sequential.iter().any(|(m, _)| !m.is_empty()),
        "suite must produce matches"
    );
    assert!(
        sequential.iter().any(|(_, s)| s.files_brute_scanned > 0),
        "suite must exercise the brute-force path"
    );
    assert!(
        sequential.iter().any(|(_, s)| s.rows_deleted > 0),
        "suite must exercise deletion vectors"
    );
    assert!(
        sequential.iter().any(|(_, s)| s.page_cache_hits > 0),
        "the warm pass must exercise the page-cache hit path"
    );
    // 2 and 8 bracket the default pool width; 4 and 16 are the pool sizes
    // the overload soak pins, and 16 exceeds the worker count on most CI
    // hosts — exercising caller-runs + steal on a saturated pool.
    for parallelism in [2, 4, 8, 16] {
        let parallel = run_suite(parallelism, None);
        assert_eq!(
            parallel, sequential,
            "parallelism {parallelism} diverged from sequential"
        );
    }
}

#[test]
fn parallel_equivalence_holds_under_chaos() {
    let chaos = || Some(ChaosConfig::uniform(0x5EED_CAFE, 0.05));
    let sequential = run_suite(1, chaos());
    for parallelism in [4, 8, 16] {
        let parallel = run_suite(parallelism, chaos());
        assert_eq!(
            parallel, sequential,
            "parallelism {parallelism} diverged from sequential under 5% chaos"
        );
    }
    // The runs must not have degraded — absorbed faults only.
    for (_, stats) in &sequential {
        assert_eq!(stats.index_files_failed, 0);
        assert_eq!(stats.files_degraded, 0);
    }
}

/// Assorted ranges: adjacent, overlapping, gapped below and above the
/// 4096-byte coalescing gap the tests use, and out of offset order.
fn ranges_under_test() -> Vec<std::ops::Range<u64>> {
    vec![
        0..100,
        100..300,       // adjacent to the first
        250..400,       // overlaps the previous
        1_000..1_200,   // gap under 4096: coalesces
        50_000..50_160, // far gap: its own GET
        140..160,       // revisits an early offset out of order
    ]
}

#[test]
fn coalesced_get_ranges_returns_identical_bytes() {
    let payload: Vec<u8> = (0..64_000u64).map(|i| (i * 31 % 251) as u8).collect();
    let store = MemoryStore::unmetered();
    store
        .put("obj", bytes::Bytes::from(payload.clone()))
        .unwrap();

    let ranges = ranges_under_test();
    let requests: Vec<RangeRequest> = ranges
        .iter()
        .map(|r| RangeRequest::new("obj", r.clone()))
        .collect();

    store.set_coalesce_gap(Some(4096));
    let before = store.stats();
    let batched = store.get_ranges(&requests).unwrap();
    let with = store.stats().since(&before);

    store.set_coalesce_gap(None);
    let before = store.stats();
    let singles: Vec<bytes::Bytes> = ranges
        .iter()
        .map(|r| store.get_range("obj", r.clone()).unwrap())
        .collect();
    let without = store.stats().since(&before);

    assert_eq!(batched, singles, "coalescing changed returned bytes");
    for (r, got) in ranges.iter().zip(&batched) {
        assert_eq!(
            &got[..],
            &payload[r.start as usize..r.end as usize],
            "range {r:?} returned wrong bytes"
        );
    }
    assert!(
        with.coalesced_gets > 0,
        "gap 4096 must coalesce adjacent/overlapping ranges"
    );
    assert!(
        with.gets < without.gets,
        "coalescing must issue fewer GETs ({} vs {})",
        with.gets,
        without.gets
    );
}

#[test]
fn coalesced_get_ranges_is_equivalent_under_chaos() {
    let payload: Vec<u8> = (0..64_000u64).map(|i| (i * 17 % 253) as u8).collect();
    let store = MemoryStore::new();
    store
        .put("obj", bytes::Bytes::from(payload.clone()))
        .unwrap();
    store
        .faults()
        .set_chaos(Some(ChaosConfig::uniform(0xC0A1, 0.05)));
    let retry = RetryStore::new(store.as_ref() as &dyn ObjectStore, generous_retry());

    let ranges = ranges_under_test();
    let requests: Vec<RangeRequest> = ranges
        .iter()
        .map(|r| RangeRequest::new("obj", r.clone()))
        .collect();

    store.set_coalesce_gap(Some(4096));
    let batched = retry.get_ranges(&requests).unwrap();
    store.faults().set_chaos(None);

    for (r, got) in ranges.iter().zip(&batched) {
        assert_eq!(
            &got[..],
            &payload[r.start as usize..r.end as usize],
            "range {r:?} corrupted under chaos"
        );
    }
    assert!(
        store.stats().faults_injected > 0,
        "chaos at 5% should have injected faults"
    );
}
