//! Crash-injection matrix: kill every protocol operation at every stage and
//! verify the §IV-D invariants hold afterwards, and that retries converge.

use rottnest::invariants::verify_all;
use rottnest::{IndexKind, Query, Rottnest};
use rottnest_integration::*;
use rottnest_object_store::{FaultKind, MemoryStore, ObjectStore, OutageWindow};

/// Every fault we inject: (description, fault to arm).
fn faults() -> Vec<(&'static str, FaultKind)> {
    vec![
        (
            "index upload fails",
            FaultKind::FailPutMatching("idx/files".into()),
        ),
        (
            "metadata commit fails",
            FaultKind::FailPutMatching("idx/meta".into()),
        ),
        (
            "input parquet vanishes",
            FaultKind::FailGetMatching(".lkpq".into()),
        ),
    ]
}

#[test]
fn index_crashes_preserve_invariants_and_retry_succeeds() {
    for (what, fault) in faults() {
        let store = MemoryStore::unmetered();
        let table = make_table(store.as_ref(), 100, 2);
        let rot = Rottnest::new(store.as_ref(), "idx", rot_config());

        store.faults().arm(fault);
        let result = rot.index(&table, IndexKind::Substring, "body");
        assert!(result.is_err(), "fault `{what}` must surface as an error");
        store.faults().disarm_all();

        verify_all(store.as_ref(), "idx").expect(what);

        // Retry converges to a committed index; search works.
        rot.index(&table, IndexKind::Substring, "body")
            .unwrap()
            .unwrap();
        let snap = table.snapshot().unwrap();
        let out = rot
            .search(
                &table,
                &snap,
                "body",
                &Query::Substring {
                    pattern: b"status S001",
                    k: 10,
                },
            )
            .unwrap();
        assert!(!out.matches.is_empty(), "after `{what}` retry");
        verify_all(store.as_ref(), "idx").expect(what);
    }
}

#[test]
fn compact_crashes_preserve_invariants() {
    for (what, fault) in [
        (
            "merged upload fails",
            FaultKind::FailPutMatching("idx/files".into()),
        ),
        (
            "swap commit fails",
            FaultKind::FailPutMatching("idx/meta".into()),
        ),
    ] {
        let store = MemoryStore::unmetered();
        let table = make_table(store.as_ref(), 100, 2);
        let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
        // Two separate index files to merge.
        rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
            .unwrap()
            .unwrap();
        table.append(&batch(100..150)).unwrap();
        rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
            .unwrap()
            .unwrap();

        store.faults().arm(fault);
        let result = rot.compact(IndexKind::Uuid { key_len: 16 }, "trace_id");
        assert!(result.is_err(), "fault `{what}` must surface");
        store.faults().disarm_all();
        verify_all(store.as_ref(), "idx").expect(what);

        // The un-merged indexes still answer queries.
        let snap = table.snapshot().unwrap();
        let key = trace_id(120);
        let out = rot
            .search(
                &table,
                &snap,
                "trace_id",
                &Query::UuidEq { key: &key, k: 1 },
            )
            .unwrap();
        assert_eq!(out.matches.len(), 1, "after `{what}`");

        // Retry compaction; still consistent.
        rot.compact(IndexKind::Uuid { key_len: 16 }, "trace_id")
            .unwrap();
        verify_all(store.as_ref(), "idx").expect(what);
    }
}

#[test]
fn vacuum_delete_crash_preserves_invariants() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 100, 2);
    let mut cfg = rot_config();
    cfg.index_timeout_ms = 1_000;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    table.append(&batch(100..150)).unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    rot.compact(IndexKind::Substring, "body").unwrap();
    store.clock().unwrap().advance_ms(5_000);

    // Crash mid-delete: first physical delete fails, vacuum aborts between
    // commit and removal — exactly the `during_delete` state of Lemma 1.
    store
        .faults()
        .arm(FaultKind::FailDeleteMatching("idx/files".into()));
    let result = rot.vacuum(&table);
    assert!(result.is_err());
    store.faults().disarm_all();
    verify_all(store.as_ref(), "idx").unwrap();

    // Re-run finishes the job.
    let report = rot.vacuum(&table).unwrap();
    assert!(report.objects_deleted >= 1);
    verify_all(store.as_ref(), "idx").unwrap();

    let snap = table.snapshot().unwrap();
    let out = rot
        .search(
            &table,
            &snap,
            "body",
            &Query::Substring {
                pattern: b"status S007",
                k: 50,
            },
        )
        .unwrap();
    assert!(!out.matches.is_empty());
}

#[test]
fn vacuum_crash_mid_delete_resumes_under_transient_faults() {
    // Same `during_delete` crash as above, but the resumed vacuum runs
    // against a store that is *still* misbehaving transiently — the retry
    // layer must absorb the faults and finish the job.
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 100, 2);
    let mut cfg = rot_config();
    cfg.index_timeout_ms = 1_000;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    table.append(&batch(100..150)).unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    rot.compact(IndexKind::Substring, "body").unwrap();
    store.clock().unwrap().advance_ms(5_000);

    // Hard crash mid-delete (Injected faults are not retryable).
    store
        .faults()
        .arm(FaultKind::FailDeleteMatching("idx/files".into()));
    assert!(rot.vacuum(&table).is_err());
    store.faults().disarm_all();
    verify_all(store.as_ref(), "idx").unwrap();

    // The resume sees transient metadata reads and delete failures; both
    // are retryable, so vacuum must converge anyway.
    let before = store.stats();
    store
        .faults()
        .arm(FaultKind::TransientGetMatching("idx/meta".into()));
    store
        .faults()
        .arm(FaultKind::TransientDeleteMatching("idx/files".into()));
    let report = rot.vacuum(&table).unwrap();
    assert!(report.objects_deleted >= 1);
    store.faults().disarm_all();
    verify_all(store.as_ref(), "idx").unwrap();

    let delta = store.stats().since(&before);
    assert!(
        delta.retries >= 2,
        "both transient faults were retried: {delta:?}"
    );
    assert_eq!(delta.faults_injected, 2);

    let snap = table.snapshot().unwrap();
    let out = rot
        .search(
            &table,
            &snap,
            "body",
            &Query::Substring {
                pattern: b"status S007",
                k: 50,
            },
        )
        .unwrap();
    assert!(!out.matches.is_empty());
}

#[test]
fn outage_mid_compact_aborts_typed_and_resumes_bit_identical() {
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 100, 2);
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    table.append(&batch(100..150)).unwrap();
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();

    // The exact result set the recovered universe must reproduce —
    // compaction must never change what a query returns.
    let snap = table.snapshot().unwrap();
    let key = trace_id(120);
    let want: Vec<(String, u64)> = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 1 },
        )
        .unwrap()
        .matches
        .iter()
        .map(|m| (m.path.clone(), m.row))
        .collect();
    assert_eq!(want.len(), 1);

    // The index domain goes fully dark mid-compact.
    let now = store.now_ms();
    store
        .faults()
        .schedule_outage(OutageWindow::domain("idx/", now, u64::MAX));
    let err = rot
        .compact(IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap_err();
    // Typed abort: the exhausted retries surface the outage with op+key
    // provenance — never a panic, and never a partial commit.
    let msg = format!("{err}");
    assert!(
        msg.contains("outage") || msg.contains("breaker"),
        "outage must surface in the error chain: {msg}"
    );
    store.faults().clear_outages();
    verify_all(store.as_ref(), "idx").unwrap();

    // The resumed compaction converges and the pre-outage result set is
    // reproduced exactly.
    rot.compact(IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap();
    verify_all(store.as_ref(), "idx").unwrap();
    let got: Vec<(String, u64)> = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 1 },
        )
        .unwrap()
        .matches
        .iter()
        .map(|m| (m.path.clone(), m.row))
        .collect();
    assert_eq!(got, want, "resume must be bit-identical to pre-outage");
}

#[test]
fn outage_mid_vacuum_aborts_typed_and_resumes() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 100, 2);
    let mut cfg = rot_config();
    cfg.index_timeout_ms = 1_000;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    table.append(&batch(100..150)).unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    rot.compact(IndexKind::Substring, "body").unwrap();
    store.clock().unwrap().advance_ms(5_000);

    // Everything goes dark mid-vacuum: the abort must land between
    // commit points, exactly like the single-op crash rows above.
    let now = store.now_ms();
    store
        .faults()
        .schedule_outage(OutageWindow::full(now, u64::MAX));
    assert!(rot.vacuum(&table).is_err(), "outage must abort vacuum");
    store.faults().clear_outages();
    verify_all(store.as_ref(), "idx").unwrap();

    // The resumed vacuum finishes the job and queries still answer.
    let report = rot.vacuum(&table).unwrap();
    assert!(report.objects_deleted >= 1);
    verify_all(store.as_ref(), "idx").unwrap();
    let snap = table.snapshot().unwrap();
    let out = rot
        .search(
            &table,
            &snap,
            "body",
            &Query::Substring {
                pattern: b"status S007",
                k: 50,
            },
        )
        .unwrap();
    assert!(!out.matches.is_empty());
}

#[test]
fn repeated_random_crashes_never_corrupt() {
    // A small chaos loop: every other index/compact call dies at a random
    // stage; invariants must hold at every quiescent point.
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 60, 1);
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());

    let stages = ["idx/files", "idx/meta"];
    for round in 0..10u64 {
        table
            .append(&batch(60 + round * 20..80 + round * 20))
            .unwrap();
        if round % 2 == 0 {
            store.faults().arm(FaultKind::FailPutMatching(
                stages[(round / 2 % 2) as usize].into(),
            ));
            let _ = rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id");
            store.faults().disarm_all();
        } else {
            rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
                .unwrap();
        }
        verify_all(store.as_ref(), "idx").unwrap();

        // Search correctness after every round: a key from the latest batch.
        let snap = table.snapshot().unwrap();
        let key = trace_id(60 + round * 20 + 5);
        let out = rot
            .search(
                &table,
                &snap,
                "trace_id",
                &Query::UuidEq { key: &key, k: 1 },
            )
            .unwrap();
        assert_eq!(out.matches.len(), 1, "round {round}");
    }
}
