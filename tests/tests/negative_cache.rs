//! The negative-lookup cache for brute scans: a fully scanned file that
//! produced zero predicate hits is remembered as proven-empty for that
//! exact probe, keyed by `(store, path, size-as-validator, probe)`.
//!
//! * a repeated miss query skips every proven-empty file (no reopen, no
//!   GETs for them) with identical — empty — results;
//! * a different probe is a different key: it rescans and stays correct;
//! * appended files are never covered by old entries;
//! * compaction and vacuum emit invalidation hints that drop entries for
//!   replaced / physically deleted files.

use rottnest::{Query, Rottnest};
use rottnest_format::NegScanCache;
use rottnest_integration::*;
use rottnest_object_store::{MemoryStore, ObjectStore};

/// A key no row hashes to: `trace_id` is deterministic per row index, and
/// indices stop well short of 9999.
fn absent_key() -> Vec<u8> {
    trace_id(9999)
}

fn uuid_query(key: &[u8]) -> Query<'_> {
    Query::UuidEq { key, k: 4 }
}

/// No index: every file is uncovered and must be brute-scanned.
fn brute_rot<'a>(store: &'a dyn ObjectStore) -> Rottnest<'a> {
    Rottnest::new(store, "idx", rot_config())
}

#[test]
fn repeat_miss_query_skips_proven_empty_files() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 200, 2);
    let rot = brute_rot(store.as_ref());
    let snap = table.snapshot().unwrap();
    let key = absent_key();

    let before = store.stats();
    let cold = rot
        .search(&table, &snap, "trace_id", &uuid_query(&key))
        .unwrap();
    let cold_gets = store.stats().since(&before).gets;
    assert!(cold.matches.is_empty());
    assert_eq!(cold.stats.files_brute_scanned, 2);
    assert_eq!(cold.stats.neg_cache_skips, 0);
    assert!(cold_gets > 0, "a cold brute scan must read the files");

    let before = store.stats();
    let warm = rot
        .search(&table, &snap, "trace_id", &uuid_query(&key))
        .unwrap();
    let warm_gets = store.stats().since(&before).gets;
    assert!(warm.matches.is_empty());
    assert_eq!(warm.stats.neg_cache_skips, 2, "both files proven empty");
    assert_eq!(warm.stats.files_brute_scanned, 0);
    assert!(
        warm_gets < cold_gets,
        "skipped files must not be re-read (cold {cold_gets}, warm {warm_gets})"
    );

    // A client with the cache disabled rescans every time.
    let mut cfg = rot_config();
    cfg.search.neg_cache = false;
    let off = Rottnest::new(store.as_ref(), "idx", cfg);
    let out = off
        .search(&table, &snap, "trace_id", &uuid_query(&key))
        .unwrap();
    assert_eq!(out.stats.files_brute_scanned, 2);
    assert_eq!(out.stats.neg_cache_skips, 0);
}

#[test]
fn different_probe_is_a_different_key() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 200, 2);
    let rot = brute_rot(store.as_ref());
    let snap = table.snapshot().unwrap();

    // Warm proven-empty entries for the absent key.
    let key = absent_key();
    rot.search(&table, &snap, "trace_id", &uuid_query(&key))
        .unwrap();

    // A present key shares no entries with it: full scan, correct hit.
    let hit = trace_id(42);
    let out = rot
        .search(&table, &snap, "trace_id", &uuid_query(&hit))
        .unwrap();
    assert_eq!(out.matches.len(), 1, "row 42 exists exactly once");
    assert_eq!(out.matches[0].row, 42);
    assert_eq!(
        out.stats.neg_cache_skips, 0,
        "nothing cached for this probe"
    );
}

#[test]
fn appended_files_are_scanned_despite_warm_entries() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 200, 2);
    let rot = brute_rot(store.as_ref());
    let key = absent_key();

    let snap = table.snapshot().unwrap();
    rot.search(&table, &snap, "trace_id", &uuid_query(&key))
        .unwrap();

    table.append(&batch(200..300)).unwrap();
    let snap = table.snapshot().unwrap();

    // The old entries still apply to the old files; the new file is new.
    let out = rot
        .search(&table, &snap, "trace_id", &uuid_query(&key))
        .unwrap();
    assert!(out.matches.is_empty());
    assert_eq!(out.stats.neg_cache_skips, 2);
    assert_eq!(out.stats.files_brute_scanned, 1, "only the appended file");

    // A key that lives in the appended file is found.
    let hit = trace_id(250);
    let out = rot
        .search(&table, &snap, "trace_id", &uuid_query(&hit))
        .unwrap();
    assert_eq!(out.matches.len(), 1);
    assert_eq!(out.matches[0].row, 50, "row 250 is the 51st row of file 3");
}

#[test]
fn compact_and_vacuum_hints_invalidate_entries() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 200, 2);
    let rot = brute_rot(store.as_ref());
    let key = absent_key();
    let ns = store.store_id();
    let probe = NegScanCache::probe_fingerprint(0, "trace_id", &key);

    let snap_old = table.snapshot().unwrap();
    let old: Vec<(String, u64)> = snap_old.files().map(|f| (f.path.clone(), f.size)).collect();
    rot.search(&table, &snap_old, "trace_id", &uuid_query(&key))
        .unwrap();
    for (path, size) in &old {
        assert!(
            NegScanCache::global().known_empty(ns, path, *size, probe),
            "{path} should be proven empty"
        );
    }

    // Compaction replaces both files; its hint must drop their entries.
    table.compact(u64::MAX).unwrap().expect("two files qualify");
    for (path, size) in &old {
        assert!(
            !NegScanCache::global().known_empty(ns, path, *size, probe),
            "compact hint must drop {path}"
        );
    }
    let snap = table.snapshot().unwrap();
    let out = rot
        .search(&table, &snap, "trace_id", &uuid_query(&key))
        .unwrap();
    assert!(out.matches.is_empty());
    assert_eq!(
        out.stats.files_brute_scanned, 1,
        "the merged file is scanned"
    );

    // Re-pin entries for the dead-but-present files via the old snapshot,
    // then vacuum: the physical delete's hint must drop them again.
    rot.search(&table, &snap_old, "trace_id", &uuid_query(&key))
        .unwrap();
    for (path, size) in &old {
        assert!(NegScanCache::global().known_empty(ns, path, *size, probe));
    }
    store.clock().unwrap().advance_ms(10);
    let removed = table.vacuum(5).unwrap();
    assert!(removed >= old.len() as u64);
    for (path, size) in &old {
        assert!(
            !NegScanCache::global().known_empty(ns, path, *size, probe),
            "vacuum hint must drop {path}"
        );
    }
}
