//! Deadline propagation through the search path:
//!
//! * an already-expired deadline fails typed *before* any store traffic;
//! * a deadline expiring mid-brute-scan aborts between files with a typed
//!   error and leaves every process-wide cache unpoisoned — the rerun
//!   matches a fault-free client that never saw an abort;
//! * the plain `search` entry point honors `SearchConfig::timeout_ms`.
//!
//! The metered `MemoryStore` drives a deterministic virtual clock (a GET
//! costs ~30 virtual ms), so "the deadline passes during the scan" is a
//! scheduling-independent fact, not a racy sleep.

use rottnest::{Query, Rottnest, RottnestError};
use rottnest_format::NegScanCache;
use rottnest_integration::*;
use rottnest_object_store::{MemoryStore, ObjectStore};

/// The standing query: present in every file, so a full scan is needed.
const PATTERN: &[u8] = b"status S001";

fn query() -> Query<'static> {
    Query::Substring {
        pattern: PATTERN,
        k: 64,
    }
}

/// `(file ordinal, row)` pairs, sorted. Paths embed a process-global
/// sequence number, so cross-store comparison goes by the file's position
/// in manifest order (== creation order), as in the chaos soak.
fn norm(snap: &rottnest_lake::Snapshot, out: &rottnest::SearchOutcome) -> Vec<(usize, u64)> {
    let ordinal: std::collections::HashMap<&str, usize> = snap
        .files()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    let mut v: Vec<_> = out
        .matches
        .iter()
        .map(|m| (ordinal[m.path.as_str()], m.row))
        .collect();
    v.sort_unstable();
    v
}

/// Sequential brute scans so the per-file deadline checks interleave with
/// the virtual clock deterministically. No index is built: every file is
/// uncovered and must be brute-scanned.
fn brute_config() -> rottnest::RottnestConfig {
    let mut cfg = rot_config();
    cfg.search.parallelism = 1;
    cfg
}

#[test]
fn expired_deadline_fails_typed_before_any_store_traffic() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 200, 2);
    let rot = Rottnest::new(store.as_ref(), "idx", brute_config());
    let snap = table.snapshot().unwrap();

    let now = store.now_ms();
    let before = store.stats();
    let err = rot
        .search_with_deadline(&table, &snap, "body", &query(), Some(now - 1))
        .unwrap_err();
    assert!(
        matches!(err, RottnestError::DeadlineExceeded { deadline_ms, .. } if deadline_ms == now - 1),
        "expected DeadlineExceeded, got {err:?}"
    );
    let delta = store.stats().since(&before);
    assert_eq!(delta.gets, 0, "an expired query must cost no GETs");
    assert_eq!(delta.lists, 0, "an expired query must cost no LISTs");
}

#[test]
fn mid_scan_abort_is_typed_and_leaves_caches_unpoisoned() {
    // Two identical universes; only A suffers the aborted search.
    let store_a = MemoryStore::new();
    let store_b = MemoryStore::new();
    let table_a = make_table(store_a.as_ref(), 200, 2);
    let table_b = make_table(store_b.as_ref(), 200, 2);
    let rot_a = Rottnest::new(store_a.as_ref(), "idx", brute_config());
    let rot_b = Rottnest::new(store_b.as_ref(), "idx", brute_config());
    let snap_a = table_a.snapshot().unwrap();
    let snap_b = table_b.snapshot().unwrap();

    // A budget of 1 virtual ms: the entry check passes, the first file's
    // reads push the clock ~30ms past the deadline, and the check before
    // the second file aborts.
    let deadline = store_a.now_ms() + 1;
    let err = rot_a
        .search_with_deadline(&table_a, &snap_a, "body", &query(), Some(deadline))
        .unwrap_err();
    assert!(
        matches!(err, RottnestError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {err:?}"
    );

    // The aborted scan must not have recorded anything poisonous: the
    // unscanned second file has no proven-empty entry for this probe.
    let ns = store_a.store_id();
    let probe = NegScanCache::probe_fingerprint(1, "body", PATTERN);
    for f in snap_a.files() {
        assert!(
            !NegScanCache::global().known_empty(ns, &f.path, f.size, probe),
            "abort must not mark {} proven-empty",
            f.path
        );
    }

    // Rerun without a deadline: bit-identical to the never-aborted client.
    let after = rot_a.search(&table_a, &snap_a, "body", &query()).unwrap();
    let clean = rot_b.search(&table_b, &snap_b, "body", &query()).unwrap();
    assert_eq!(
        norm(&snap_a, &after),
        norm(&snap_b, &clean),
        "abort poisoned a cache"
    );
    assert_eq!(
        after.matches.len(),
        6,
        "status S001 in rows {{1,38,75,112,149,186}}"
    );
}

#[test]
fn plain_search_honors_configured_timeout() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 200, 2);
    let mut cfg = brute_config();
    cfg.search.timeout_ms = Some(1);
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    let snap = table.snapshot().unwrap();

    let err = rot.search(&table, &snap, "body", &query()).unwrap_err();
    assert!(
        matches!(err, RottnestError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {err:?}"
    );

    // The same client with the timeout lifted finishes and is correct.
    let mut cfg = brute_config();
    cfg.search.timeout_ms = None;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    let out = rot.search(&table, &snap, "body", &query()).unwrap();
    assert_eq!(out.matches.len(), 6);
}
