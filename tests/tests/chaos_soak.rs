//! Chaos soak: the full index → search → compact → vacuum lifecycle runs
//! under seeded probabilistic fault injection at increasing failure rates,
//! and must produce results identical to the fault-free run — every
//! transient fault absorbed by the retrying store, every invariant intact.
//!
//! Results are compared *normalized*: file paths embed store timestamps
//! (which drift between runs as backoff and latency spikes advance the
//! simulated clock differently), so a match is identified by its file's
//! ordinal in the snapshot's manifest order — which equals creation order
//! in every run — plus row and score bits.

use rottnest::invariants::verify_all;
use rottnest::{IndexKind, Query, Rottnest, SearchOutcome};
use rottnest_integration::*;
use rottnest_ivfpq::SearchParams;
use rottnest_lake::{Snapshot, Table, TableConfig};
use rottnest_object_store::{ChaosConfig, FaultKind, MemoryStore, ObjectStore, RetryPolicy};

/// A run-independent view of one match: (file ordinal, row, score bits).
type Norm = (usize, u64, Option<u32>);

/// Generous budget: at a 20% per-request fault rate the worst op (a torn
/// range read needing a HEAD) fails a given attempt with p ≈ 0.36, so 16
/// attempts leave ~1e-7 exhaustion probability per op — the soak must
/// never degrade, or results could diverge from the baseline.
fn soak_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 16,
        base_backoff_ms: 5,
        max_backoff_ms: 100,
        jitter_seed: 0xC0FF_EE00,
        verify_short_reads: true,
    }
}

fn normalize(snap: &Snapshot, out: &SearchOutcome) -> Vec<Norm> {
    let ordinal: std::collections::HashMap<&str, usize> = snap
        .files()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    let mut rows: Vec<Norm> = out
        .matches
        .iter()
        .map(|m| (ordinal[m.path.as_str()], m.row, m.score.map(f32::to_bits)))
        .collect();
    rows.sort_unstable();
    rows
}

/// The four standing queries: a unique hit, a deleted key, a multi-file
/// substring, and a nearest-neighbour ranking.
fn run_queries(rot: &Rottnest<'_>, table: &Table<'_>, snap: &Snapshot) -> Vec<Vec<Norm>> {
    let mut out = Vec::new();
    let hit = trace_id(42);
    out.push(normalize(
        snap,
        &rot.search(table, snap, "trace_id", &Query::UuidEq { key: &hit, k: 4 })
            .unwrap(),
    ));
    let deleted = trace_id(4);
    out.push(normalize(
        snap,
        &rot.search(
            table,
            snap,
            "trace_id",
            &Query::UuidEq {
                key: &deleted,
                k: 4,
            },
        )
        .unwrap(),
    ));
    out.push(normalize(
        snap,
        &rot.search(
            table,
            snap,
            "body",
            &Query::Substring {
                pattern: b"status S001",
                k: 64,
            },
        )
        .unwrap(),
    ));
    let q = embedding(7);
    out.push(normalize(
        snap,
        &rot.search(
            table,
            snap,
            "embedding",
            &Query::VectorNn {
                query: &q,
                params: SearchParams {
                    k: 8,
                    nprobe: 16,
                    refine: 64,
                },
            },
        )
        .unwrap(),
    ));
    out
}

/// One full lifecycle under (optional) chaos. Returns the normalized
/// results of both search rounds plus the injected-fault and retry counts.
fn run_lifecycle(chaos: Option<ChaosConfig>) -> (Vec<Vec<Norm>>, u64, u64) {
    let store = MemoryStore::new();
    store.faults().set_chaos(chaos);

    let table = Table::create(
        store.as_ref(),
        "tbl",
        &schema(),
        TableConfig {
            retry: soak_policy(),
            ..small_pages()
        },
    )
    .unwrap();
    table.append(&batch(0..50)).unwrap();
    table.append(&batch(50..100)).unwrap();

    let mut cfg = rot_config();
    cfg.retry = soak_policy();
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);

    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Vector { dim: DIM as u32 }, "embedding")
        .unwrap()
        .unwrap();

    table.append(&batch(100..150)).unwrap();
    // Delete rows 3..=5 from the earliest file (manifest order is creation
    // order — paths embed a zero-padded timestamp plus sequence number).
    let first = table
        .snapshot()
        .unwrap()
        .files()
        .next()
        .unwrap()
        .path
        .clone();
    table.delete_rows(&first, &[3, 4, 5]).unwrap();

    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Vector { dim: DIM as u32 }, "embedding")
        .unwrap()
        .unwrap();
    rot.checkpoint_meta().unwrap();

    let snap = table.snapshot().unwrap();
    let mut rounds = run_queries(&rot, &table, &snap);

    rot.compact(IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap();
    rot.compact(IndexKind::Substring, "body").unwrap();
    rot.compact(IndexKind::Vector { dim: DIM as u32 }, "embedding")
        .unwrap();

    // Age every index object past the timeout so vacuum may delete freely.
    store.clock().unwrap().advance_ms(2 * 3_600_000);
    rot.vacuum(&table).unwrap();

    let snap = table.snapshot().unwrap();
    rounds.extend(run_queries(&rot, &table, &snap));

    // Invariants are checked fault-free: chaos off, direct store access.
    store.faults().set_chaos(None);
    verify_all(store.as_ref(), "idx").unwrap();

    let stats = store.stats();
    (rounds, stats.faults_injected, stats.retries)
}

/// The chaos rounds: seeds and fault rates. Defaults reproduce the
/// historical ramp (0.01, 0.05, 0.20); the nightly soak lane raises
/// `SOAK_ITERS` to repeat the ramp with fresh seeds and `SOAK_FAULT_RATE`
/// to push the top rate higher.
fn soak_rounds() -> Vec<(u64, f64)> {
    let iters: u64 = std::env::var("SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let top: f64 = std::env::var("SOAK_FAULT_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);
    let ramp = [0.01, 0.05, top];
    (1..=iters.max(1))
        .map(|round| (round, ramp[((round - 1) % 3) as usize]))
        .collect()
}

#[test]
fn chaos_soak_lifecycle_is_unchanged_by_transient_faults() {
    let (baseline, faults, _) = run_lifecycle(None);
    assert_eq!(faults, 0, "the fault-free baseline must inject nothing");
    assert_eq!(baseline[0].len(), 1, "unique key hit");
    assert!(baseline[1].is_empty(), "deleted key must not match");
    assert_eq!(
        baseline[2].len(),
        5,
        "status S001 appears in rows {{1,38,75,112,149}}"
    );
    assert_eq!(baseline[3].len(), 8, "vector top-k");
    assert_eq!(
        &baseline[..4],
        &baseline[4..],
        "compaction and vacuum must not change any result"
    );

    for (round, rate) in soak_rounds() {
        let (results, faults, retries) =
            run_lifecycle(Some(ChaosConfig::uniform(0xB0B0 + round, rate)));
        assert_eq!(results, baseline, "results diverged at fault rate {rate}");
        if rate >= 0.05 {
            assert!(
                faults > 0,
                "chaos at rate {rate} should have injected faults"
            );
            assert!(
                retries > 0,
                "chaos at rate {rate} should have caused retries"
            );
        }
    }
}

#[test]
fn search_degrades_to_brute_force_when_index_reads_exhaust_retries() {
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 100, 2);
    let mut cfg = rot_config();
    cfg.retry = RetryPolicy {
        max_attempts: 3,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        ..RetryPolicy::default()
    };
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    let snap = table.snapshot().unwrap();
    let query = Query::Substring {
        pattern: b"status S001",
        k: 100,
    };

    let clean = rot.search(&table, &snap, "body", &query).unwrap();
    assert_eq!(clean.matches.len(), 3, "rows 1, 38, 75");
    assert_eq!(clean.stats.index_files_failed, 0);
    assert_eq!(clean.stats.files_degraded, 0);
    assert_eq!(clean.stats.files_brute_scanned, 0);

    // The clean search warmed the process-wide component cache; drop it so
    // the degraded search actually issues the index GETs the armed faults
    // target (armed faults fire on GETs, which a warm cache would skip).
    rottnest_component::ComponentCache::global().clear();

    // More armed faults than the retry budget: every read of the index
    // object keeps failing until the budget is exhausted.
    for _ in 0..16 {
        store
            .faults()
            .arm(FaultKind::TransientGetMatching("idx/files".into()));
    }
    let degraded = rot.search(&table, &snap, "body", &query).unwrap();
    store.faults().disarm_all();

    let sorted = |o: &SearchOutcome| {
        let mut v: Vec<(String, u64)> = o.matches.iter().map(|m| (m.path.clone(), m.row)).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(
        sorted(&degraded),
        sorted(&clean),
        "degraded results must stay correct"
    );
    assert_eq!(degraded.stats.index_files_failed, 1);
    assert_eq!(degraded.stats.files_degraded, 2);
    assert_eq!(degraded.stats.files_brute_scanned, 2);
}

#[test]
fn vector_search_degrades_to_exact_scan_when_index_reads_fail() {
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 100, 2);
    let mut cfg = rot_config();
    cfg.retry = RetryPolicy {
        max_attempts: 3,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        ..RetryPolicy::default()
    };
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    rot.index(&table, IndexKind::Vector { dim: DIM as u32 }, "embedding")
        .unwrap()
        .unwrap();
    let snap = table.snapshot().unwrap();
    let q = embedding(13);
    let query = Query::VectorNn {
        query: &q,
        params: SearchParams {
            k: 6,
            nprobe: 16,
            refine: 64,
        },
    };

    let clean = rot.search(&table, &snap, "embedding", &query).unwrap();
    assert_eq!(clean.matches.len(), 6);
    assert_eq!(clean.stats.files_degraded, 0);

    // Cold index reads required, as above.
    rottnest_component::ComponentCache::global().clear();

    for _ in 0..24 {
        store
            .faults()
            .arm(FaultKind::TransientGetMatching("idx/files".into()));
    }
    let degraded = rot.search(&table, &snap, "embedding", &query).unwrap();
    store.faults().disarm_all();

    // The exact rerank (index path) and the brute scan compute the same
    // l2_sq, so scores must agree bit for bit.
    let norm = |o: &SearchOutcome| {
        let mut v: Vec<(String, u64, u32)> = o
            .matches
            .iter()
            .map(|m| (m.path.clone(), m.row, m.score.unwrap().to_bits()))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(
        norm(&degraded),
        norm(&clean),
        "exact scan must agree with the index path"
    );
    assert_eq!(degraded.stats.index_files_failed, 1);
    assert_eq!(degraded.stats.files_degraded, 2);
    assert_eq!(degraded.stats.files_brute_scanned, 2);
}
