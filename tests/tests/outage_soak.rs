//! Outage soak: a full outage of the index prefix while the service is
//! already at 2x its admission ceiling. The store-health stack must
//!
//! * trip the index-domain circuit breaker after a handful of exhausted
//!   operations and stop hammering the dead domain — total requests
//!   offered to it stay within the retry-budget amplification bound
//!   (≤ 2.0x the admitted queries),
//! * brown the service out instead of failing: interactive queries keep
//!   completing on the brute path with **bit-identical** results, batch
//!   queries shed first with a typed brownout refusal,
//! * surface only typed errors throughout (`Overloaded` /
//!   `DeadlineExceeded`) — nothing else escapes, nothing panics,
//! * recover within a bounded sim-clock window once the outage clears:
//!   half-open probes (bounded, no thundering herd) close the breaker
//!   and the pre-outage baseline reproduces exactly.
//!
//! The nightly lane multiplies the storm iteration counts via
//! `OUTAGE_SOAK_MULT` (4x), mirroring `POOL_SOAK_MULT` for the overload
//! soak.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use rottnest::{IndexKind, Query, Rottnest, RottnestError, SearchOutcome};
use rottnest_integration::*;
use rottnest_lake::{Snapshot, Table, TableConfig};
use rottnest_object_store::{
    BreakerState, ChaosConfig, MemoryStore, ObjectStore, OutageWindow, RetryPolicy,
};
use rottnest_serve::{AdmissionConfig, QueryClass, QueryService, ServiceConfig};

/// Storm iterations: `base` on a PR lane, multiplied by
/// `OUTAGE_SOAK_MULT` in the nightly lane (which runs at 4x).
fn outage_iters(base: usize) -> usize {
    std::env::var("OUTAGE_SOAK_MULT")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(base, |m| base * m.max(1))
}

/// Tight retry policy: failures exhaust fast (sim-clock backoff), so the
/// breaker trips within a few operations instead of a few seconds.
fn outage_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff_ms: 1,
        max_backoff_ms: 8,
        jitter_seed: 0x0D0A,
        verify_short_reads: true,
    }
}

/// `(path, row, score bits)` triples, sorted — bit-identity within one
/// store universe.
fn norm(out: &SearchOutcome) -> Vec<(String, u64, Option<u32>)> {
    let mut v: Vec<_> = out
        .matches
        .iter()
        .map(|m| (m.path.clone(), m.row, m.score.map(f32::to_bits)))
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn outage_soak_browns_out_bounded_and_recovers_on_sim_clock() {
    let store = MemoryStore::new();
    let table = Table::create(
        store.as_ref(),
        "tbl",
        &schema(),
        TableConfig {
            retry: outage_policy(),
            ..small_pages()
        },
    )
    .unwrap();
    table.append(&batch(0..100)).unwrap();
    table.append(&batch(100..200)).unwrap();

    let mut cfg = rot_config();
    cfg.retry = outage_policy();
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    let snap: Snapshot = table.snapshot().unwrap();

    // Exact-search pool only: brute scans return the same matches the
    // indexes do, so brownout results must be bit-identical.
    let present = trace_id(42);
    let absent = trace_id(9999);
    let pool: Vec<(&str, Query<'_>)> = vec![
        (
            "trace_id",
            Query::UuidEq {
                key: &present,
                k: 4,
            },
        ),
        ("trace_id", Query::UuidEq { key: &absent, k: 4 }),
        (
            "body",
            Query::Substring {
                pattern: b"status S001",
                k: 64,
            },
        ),
    ];
    let baseline: Vec<Vec<(String, u64, Option<u32>)>> = pool
        .iter()
        .map(|(col, q)| norm(&rot.search(&table, &snap, col, q).unwrap()))
        .collect();
    assert_eq!(baseline[0].len(), 1, "unique key hit");
    assert!(baseline[1].is_empty(), "absent key");
    assert!(!baseline[2].is_empty(), "substring hits exist");

    let service = QueryService::new(
        &rot,
        ServiceConfig {
            admission: AdmissionConfig {
                max_concurrent: 2,
                max_queued: 2,
                expected_service_ms: 10,
                ..AdmissionConfig::default()
            },
            tenant_limit_per_sec: 0,
            default_timeout_ms: None,
        },
    );

    // Pre-outage sanity through the service.
    for (i, (col, q)) in pool.iter().enumerate() {
        let out = service
            .query_with_class(
                &table,
                &snap,
                col,
                q,
                "tenant",
                None,
                QueryClass::Interactive,
            )
            .unwrap();
        assert_eq!(norm(&out), baseline[i], "pre-outage divergence on {col}");
    }

    // The index prefix goes fully dark, open-ended.
    let outage_start = store.now_ms();
    store
        .faults()
        .schedule_outage(OutageWindow::domain("idx/", outage_start, u64::MAX));
    let before = store.stats();
    let opens_before = rot.health().breaker_opens();

    let iters = outage_iters(40);
    let mut wrong = 0usize;
    let mut untyped = 0usize;
    let mut brownout_refusals = 0usize;
    let mut admitted_during_outage = 0u64;
    for i in 0..iters {
        // Once browned out, every 4th attempt is a batch query that the
        // service must refuse up front with a typed brownout hint.
        if rot.in_brownout() && i % 4 == 0 {
            match service.query_with_class(
                &table,
                &snap,
                "trace_id",
                &pool[0].1,
                "tenant",
                None,
                QueryClass::Batch,
            ) {
                Err(RottnestError::Overloaded { reason, .. }) if reason.contains("brownout") => {
                    brownout_refusals += 1;
                }
                Err(RottnestError::Overloaded { .. })
                | Err(RottnestError::DeadlineExceeded { .. }) => {}
                Err(_) => untyped += 1,
                Ok(_) => wrong += 1, // batch must not run in brownout
            }
            continue;
        }
        let which = i % pool.len();
        let (col, q) = &pool[which];
        match service.query_with_class(
            &table,
            &snap,
            col,
            q,
            "tenant",
            None,
            QueryClass::Interactive,
        ) {
            Ok(out) => {
                admitted_during_outage += 1;
                if norm(&out) != baseline[which] {
                    wrong += 1;
                }
            }
            Err(RottnestError::Overloaded { .. }) | Err(RottnestError::DeadlineExceeded { .. }) => {
            }
            Err(e) => {
                eprintln!("untyped outage error: {e}");
                untyped += 1;
            }
        }
    }
    assert_eq!(untyped, 0, "only typed errors may escape during the outage");
    assert_eq!(wrong, 0, "brownout results must stay bit-identical");
    assert!(
        admitted_during_outage > 0,
        "interactive queries must keep completing through the outage"
    );
    assert!(
        rot.health().breaker_opens() > opens_before,
        "the index-domain breaker must trip"
    );
    assert!(
        brownout_refusals > 0,
        "batch must shed with a brownout hint"
    );

    // Amplification bound: requests offered to the dead domain (every
    // injected outage failure is one attempt) over admitted queries.
    let delta = store.stats().since(&before);
    let amplification = delta.faults_injected as f64 / admitted_during_outage as f64;
    assert!(
        amplification <= 2.0,
        "retry amplification {amplification:.2} exceeds the 2.0 bound \
         ({} attempts / {admitted_during_outage} admitted)",
        delta.faults_injected
    );
    let stats = service.stats();
    assert!(
        stats.brownout_queries > 0,
        "the service must surface brownout-served queries: {stats:?}"
    );
    assert_eq!(stats.brownout_shed, brownout_refusals as u64);

    // The outage clears; recovery rides ordinary traffic through the
    // bounded half-open probes and must finish within a few cooldowns of
    // sim time (default cooldown 1s).
    store.faults().clear_outages();
    let cleared_at = store.now_ms();
    let mut recovered_at = None;
    for _ in 0..500 {
        let now = store.now_ms();
        if rot.health().state("idx", now) == BreakerState::Closed {
            recovered_at = Some(now);
            break;
        }
        let _ = service.query_with_class(
            &table,
            &snap,
            "trace_id",
            &pool[0].1,
            "tenant",
            None,
            QueryClass::Interactive,
        );
        store.clock().unwrap().advance_ms(50);
    }
    let recovered_at = recovered_at.expect("breaker must close after the outage clears");
    let recovery_ms = recovered_at - cleared_at;
    assert!(
        recovery_ms <= 4_000,
        "recovery took {recovery_ms} sim-ms, beyond the bounded window"
    );

    // Post-recovery: the service and a direct client both reproduce the
    // pre-outage baseline exactly — no cache was poisoned.
    for (i, (col, q)) in pool.iter().enumerate() {
        let out = service
            .query_with_class(
                &table,
                &snap,
                col,
                q,
                "tenant",
                None,
                QueryClass::Interactive,
            )
            .unwrap();
        assert_eq!(norm(&out), baseline[i], "post-recovery service {col}");
        let direct = rot.search(&table, &snap, col, q).unwrap();
        assert_eq!(norm(&direct), baseline[i], "post-recovery direct {col}");
    }
}

/// The same outage composed with seeded chaos and 16 storming threads:
/// brownout admission must stay typed and bit-identical under real
/// concurrency, and the herd must not stampede the half-open probes.
#[test]
fn outage_soak_storm_stays_typed_under_chaos_and_concurrency() {
    let store = MemoryStore::new();
    let table = Table::create(
        store.as_ref(),
        "tbl",
        &schema(),
        TableConfig {
            retry: outage_policy(),
            ..small_pages()
        },
    )
    .unwrap();
    table.append(&batch(0..100)).unwrap();
    table.append(&batch(100..200)).unwrap();

    let mut cfg = rot_config();
    cfg.retry = outage_policy();
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    let snap: Snapshot = table.snapshot().unwrap();

    let present = trace_id(42);
    let pool: Vec<(&str, Query<'_>)> = vec![
        (
            "trace_id",
            Query::UuidEq {
                key: &present,
                k: 4,
            },
        ),
        (
            "body",
            Query::Substring {
                pattern: b"status S001",
                k: 64,
            },
        ),
    ];
    let baseline: Vec<Vec<(String, u64, Option<u32>)>> = pool
        .iter()
        .map(|(col, q)| norm(&rot.search(&table, &snap, col, q).unwrap()))
        .collect();

    // 2x overload (16 threads on 2 slots + 2 queue spots) with 5% chaos
    // on top of the scheduled index outage.
    store
        .faults()
        .set_chaos(Some(ChaosConfig::uniform(0x0D0A5EED, 0.05)));
    store
        .faults()
        .schedule_outage(OutageWindow::domain("idx/", store.now_ms(), u64::MAX));
    let service = QueryService::new(
        &rot,
        ServiceConfig {
            admission: AdmissionConfig {
                max_concurrent: 2,
                max_queued: 2,
                expected_service_ms: 10,
                ..AdmissionConfig::default()
            },
            tenant_limit_per_sec: 0,
            default_timeout_ms: None,
        },
    );

    const THREADS: usize = 16;
    let iters = outage_iters(10);
    let barrier = Barrier::new(THREADS);
    let untyped_errors = AtomicUsize::new(0);
    let wrong_results = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let service = &service;
            let table = &table;
            let snap = &snap;
            let pool = &pool;
            let baseline = &baseline;
            let barrier = &barrier;
            let untyped_errors = &untyped_errors;
            let wrong_results = &wrong_results;
            let completed = &completed;
            s.spawn(move || {
                barrier.wait();
                for i in 0..iters {
                    let which = (t + i) % pool.len();
                    let (col, q) = &pool[which];
                    let class = if t % 4 == 3 {
                        QueryClass::Batch
                    } else {
                        QueryClass::Interactive
                    };
                    match service.query_with_class(table, snap, col, q, "tenant", None, class) {
                        Ok(out) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            if norm(&out) != baseline[which] {
                                wrong_results.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(RottnestError::Overloaded { .. })
                        | Err(RottnestError::DeadlineExceeded { .. }) => {}
                        Err(e) => {
                            eprintln!("untyped storm error: {e}");
                            untyped_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    assert_eq!(untyped_errors.load(Ordering::Relaxed), 0, "typed-only");
    assert_eq!(wrong_results.load(Ordering::Relaxed), 0, "bit-identity");
    assert!(
        completed.load(Ordering::Relaxed) > 0,
        "brownout must keep serving some interactive queries"
    );

    // Storm over, faults lifted: drive the bounded half-open probes
    // until the breaker closes, then the exact baseline reproduces.
    store.faults().set_chaos(None);
    store.faults().clear_outages();
    for _ in 0..500 {
        if rot.health().state("idx", store.now_ms()) == BreakerState::Closed {
            break;
        }
        let _ = rot.search(&table, &snap, "trace_id", &pool[0].1);
        store.clock().unwrap().advance_ms(50);
    }
    assert_eq!(
        rot.health().state("idx", store.now_ms()),
        BreakerState::Closed,
        "breaker must close once the outage clears"
    );
    for ((col, q), want) in pool.iter().zip(&baseline) {
        let out = rot.search(&table, &snap, col, q).unwrap();
        assert_eq!(&norm(&out), want, "post-storm divergence on {col}");
    }
}
