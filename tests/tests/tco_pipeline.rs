//! End-to-end TCO pipeline: measure simulated latencies on a live system,
//! derive the §VI cost model through the same extrapolation the figure
//! harnesses use, and check the phase diagram has the paper's qualitative
//! structure.

use rottnest::{IndexKind, Query, Rottnest};
use rottnest_baselines::BruteForce;
use rottnest_bench::TcoInputs;
use rottnest_integration::*;
use rottnest_object_store::{MemoryStore, ObjectStore};
use rottnest_tco::{prices, PhaseDiagram, Winner};

#[test]
fn measured_costs_produce_three_phase_diagram() {
    let store = MemoryStore::new(); // metered
                                    // Enough files that the full scan's per-file round trips dominate the
                                    // fixed planning cost Rottnest pays.
    let table = make_table(store.as_ref(), 1600, 16);
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());

    let clock = store.clock().unwrap();
    let t0 = clock.now_micros();
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    let build_s = (clock.now_micros() - t0) as f64 / 1e6;

    let snap = table.snapshot().unwrap();
    let key = trace_id(123);
    let t0 = clock.now_micros();
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 1 },
        )
        .unwrap();
    let rot_latency = (clock.now_micros() - t0) as f64 / 1e6;
    assert_eq!(out.matches.len(), 1);

    let bf = BruteForce::new(&table, snap);
    let t0 = clock.now_micros();
    bf.scan_uuid("trace_id", &key, 1).unwrap();
    let brute_latency = (clock.now_micros() - t0) as f64 / 1e6;

    // Rottnest must be meaningfully faster than a full scan even at tiny
    // harness scale (the gap widens with data).
    assert!(
        brute_latency > rot_latency * 1.5,
        "brute {brute_latency}s vs rottnest {rot_latency}s"
    );

    let inputs = TcoInputs {
        rottnest_latency_s: rot_latency,
        brute_latency_1w_s: brute_latency,
        scale: 1e4, // pretend the dataset is 10,000× larger
        data_bytes: store.bytes_under("tbl/data/"),
        index_bytes: rot.index_bytes().unwrap(),
        build_seconds: build_s,
        dedicated_hourly: prices::R6G_LARGE_SEARCH_HOURLY,
    };
    let approaches = inputs.approaches();

    let d = PhaseDiagram::compute(&approaches);
    let (c, b, r) = d.area_shares();
    assert!(r > 0.2, "rottnest should win a large region, got {r:.2}");
    assert!(
        c > 0.0 && b > 0.0,
        "all three phases present: c={c:.2} b={b:.2}"
    );

    // Structure: at long horizons, low loads → brute force; medium →
    // rottnest; extreme → copy data.
    assert_eq!(d.winner_at(10.0, 1.0), Winner::BruteForce);
    assert_eq!(d.winner_at(10.0, 1e8), Winner::CopyData);
    assert!(
        d.rottnest_decades_at(10.0) > 2.0,
        "rottnest band at 10 months: {} decades",
        d.rottnest_decades_at(10.0)
    );

    // §VII-D1 sensitivity conclusions hold on these measured costs.
    assert!(rottnest_tco::sensitivity::observations_hold(&approaches));
}

#[test]
fn rottnest_reads_orders_of_magnitude_fewer_bytes() {
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 1000, 4);
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    let snap = table.snapshot().unwrap();

    let before = store.stats();
    rot.search(
        &table,
        &snap,
        "body",
        &Query::Substring {
            pattern: b"row 777 ",
            k: 5,
        },
    )
    .unwrap();
    let rot_bytes = store.stats().since(&before).bytes_read;

    let bf = BruteForce::new(&table, snap);
    let before = store.stats();
    bf.scan_substring("body", b"row 777 ", 5).unwrap();
    let brute_bytes = store.stats().since(&before).bytes_read;

    assert!(
        brute_bytes > rot_bytes,
        "brute {brute_bytes}B must exceed rottnest {rot_bytes}B"
    );
}
