//! The canonical correctness property: Rottnest search ≡ brute-force scan
//! ≡ dedicated-system search, for every query type, across lake mutations.

use rottnest::{IndexKind, Query, Rottnest};
use rottnest_baselines::{BruteForce, DedicatedText, DedicatedUuid, DedicatedVector};
use rottnest_integration::*;
use rottnest_ivfpq::SearchParams;
use rottnest_lake::Table;
use rottnest_object_store::{MemoryStore, ObjectStore};

fn pairs(ms: &[rottnest::Match]) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = ms.iter().map(|m| (m.path.clone(), m.row)).collect();
    v.sort();
    v
}

#[test]
fn uuid_equivalence_across_mutations() {
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 400, 4);
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();

    // Mutations: delete some rows, append un-indexed data, lake-compact.
    let first = table
        .snapshot()
        .unwrap()
        .files()
        .next()
        .unwrap()
        .path
        .clone();
    table.delete_rows(&first, &[5, 50]).unwrap();
    table.append(&batch(400..440)).unwrap();

    let snap = table.snapshot().unwrap();
    let bf = BruteForce::new(&table, snap.clone());
    let dedicated = DedicatedUuid::ingest(&table, &snap, "trace_id").unwrap();

    for i in [0u64, 5, 99, 150, 399, 410, 999_999] {
        let key = trace_id(i);
        let r = rot
            .search(
                &table,
                &snap,
                "trace_id",
                &Query::UuidEq { key: &key, k: 10 },
            )
            .unwrap();
        let (b, _) = bf.scan_uuid("trace_id", &key, 10).unwrap();
        let d = dedicated.search(&key, 10);
        assert_eq!(pairs(&r.matches), pairs(&b), "rottnest vs brute, key {i}");
        assert_eq!(
            pairs(&r.matches),
            pairs(&d),
            "rottnest vs dedicated, key {i}"
        );
    }
}

#[test]
fn substring_equivalence_across_mutations() {
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 300, 3);
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();

    let second = table
        .snapshot()
        .unwrap()
        .files()
        .nth(1)
        .unwrap()
        .path
        .clone();
    table.delete_rows(&second, &[10, 20, 30]).unwrap();

    let snap = table.snapshot().unwrap();
    let bf = BruteForce::new(&table, snap.clone());
    let dedicated = DedicatedText::ingest(&table, &snap, "body").unwrap();

    for pattern in ["status S013", "host h5 ", "row 27 ", "no-such-needle"] {
        let big_k = 10_000;
        let r = rot
            .search(
                &table,
                &snap,
                "body",
                &Query::Substring {
                    pattern: pattern.as_bytes(),
                    k: big_k,
                },
            )
            .unwrap();
        let (b, _) = bf
            .scan_substring("body", pattern.as_bytes(), big_k)
            .unwrap();
        assert_eq!(
            pairs(&r.matches),
            pairs(&b),
            "rottnest vs brute, {pattern:?}"
        );
        let d = dedicated.search(pattern.as_bytes(), big_k).unwrap();
        assert_eq!(
            pairs(&r.matches),
            pairs(&d),
            "rottnest vs dedicated, {pattern:?}"
        );
    }
}

#[test]
fn vector_topk_contains_exact_best_match() {
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 600, 3);
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
    rot.index(&table, IndexKind::Vector { dim: DIM as u32 }, "embedding")
        .unwrap()
        .unwrap();

    let snap = table.snapshot().unwrap();
    let bf = BruteForce::new(&table, snap.clone());
    let dedicated = DedicatedVector::ingest(&table, &snap, "embedding").unwrap();

    for i in [3u64, 77, 200, 591] {
        let q = embedding(i);
        let r = rot
            .search(
                &table,
                &snap,
                "embedding",
                &Query::VectorNn {
                    query: &q,
                    params: SearchParams {
                        k: 5,
                        nprobe: 16,
                        refine: 64,
                    },
                },
            )
            .unwrap();
        let (b, _) = bf.scan_vector("embedding", &q, 1).unwrap();
        let d = dedicated.search(&q, 1);
        // The exact nearest neighbor (distance 0: q is a DB vector) must be
        // rank-1 everywhere.
        assert_eq!(r.matches[0].score, Some(0.0), "query {i}");
        assert_eq!(
            (r.matches[0].path.clone(), r.matches[0].row),
            (b[0].path.clone(), b[0].row)
        );
        assert_eq!(
            (r.matches[0].path.clone(), r.matches[0].row),
            (d[0].path.clone(), d[0].row)
        );
    }
}

#[test]
fn equivalence_survives_index_compaction_and_vacuum() {
    let store = MemoryStore::new();
    let table = Table::create(store.as_ref(), "tbl", &schema(), small_pages()).unwrap();
    let mut cfg = rot_config();
    cfg.index_timeout_ms = 1_000;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);

    for f in 0..5u64 {
        table.append(&batch(f * 60..(f + 1) * 60)).unwrap();
        rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
            .unwrap()
            .unwrap();
    }
    rot.compact(IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap();
    store.clock().unwrap().advance_ms(2_000);
    rot.vacuum(&table).unwrap();

    let snap = table.snapshot().unwrap();
    let bf = BruteForce::new(&table, snap.clone());
    for i in (0..300).step_by(37) {
        let key = trace_id(i);
        let r = rot
            .search(
                &table,
                &snap,
                "trace_id",
                &Query::UuidEq { key: &key, k: 5 },
            )
            .unwrap();
        let (b, _) = bf.scan_uuid("trace_id", &key, 5).unwrap();
        assert_eq!(pairs(&r.matches), pairs(&b), "key {i}");
    }
    rottnest::invariants::verify_all(store.as_ref(), "idx").unwrap();
}
