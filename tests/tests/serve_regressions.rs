//! Serving-layer regression pins for overload-review findings:
//!
//! * whole-query single-flight keys include the table identity, so two
//!   tables that happen to share a snapshot version never share a flight;
//! * a query shed at admission refunds its tenant-budget token — refusal
//!   does not double-penalize the tenant;
//! * a deduped follower re-checks its *own* deadline after joining a
//!   leader's flight, so waiting on the leader can never return `Ok` past
//!   the follower's deadline.

use std::sync::Barrier;
use std::time::Duration;

use rottnest::{IndexKind, Query, Rottnest, RottnestError};
use rottnest_integration::*;
use rottnest_lake::Table;
use rottnest_object_store::{MemoryStore, ObjectStore};
use rottnest_serve::{AdmissionConfig, QueryService, ServiceConfig};

fn wide_open_service() -> ServiceConfig {
    ServiceConfig {
        admission: AdmissionConfig {
            max_concurrent: 64,
            max_queued: 64,
            expected_service_ms: 10,
            ..AdmissionConfig::default()
        },
        tenant_limit_per_sec: 0,
        default_timeout_ms: None,
    }
}

#[test]
fn identical_queries_on_different_tables_never_share_a_flight() {
    // Two tables, one commit each, so both snapshots sit at the same
    // version — the exact collision a versions-only flight key shares.
    // The key trace_id(150) exists in both tables but at different rows.
    let inner = MemoryStore::unmetered();
    let slow = SlowStore::new(inner.clone(), Duration::from_millis(10));
    let table_a = Table::create(&slow, "tbl_a", &schema(), small_pages()).unwrap();
    table_a.append(&batch(0..200)).unwrap();
    let table_b = Table::create(&slow, "tbl_b", &schema(), small_pages()).unwrap();
    table_b.append(&batch(100..300)).unwrap();
    let snap_a = table_a.snapshot().unwrap();
    let snap_b = table_b.snapshot().unwrap();
    assert_eq!(
        snap_a.version(),
        snap_b.version(),
        "the trap requires equal versions"
    );

    // No index: every query brute-scans its table through the slow store,
    // so the eight flights genuinely overlap.
    let rot = Rottnest::new(&slow, "idx", rot_config());
    let service = QueryService::new(&rot, wide_open_service());
    let key = trace_id(150);
    let query = Query::UuidEq { key: &key, k: 4 };

    const THREADS: usize = 8;
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (table, snap, root, want_row) = if t % 2 == 0 {
                (&table_a, &snap_a, "tbl_a/", 150)
            } else {
                (&table_b, &snap_b, "tbl_b/", 50)
            };
            let service = &service;
            let query = &query;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                let out = service
                    .query(table, snap, "trace_id", query, "tenant-a")
                    .unwrap();
                assert_eq!(out.matches.len(), 1, "unique key hit on {root}");
                assert!(
                    out.matches[0].path.starts_with(root),
                    "flight leaked across tables: got {} for {root}",
                    out.matches[0].path
                );
                assert_eq!(out.matches[0].row, want_row);
            });
        }
    });
}

#[test]
fn admission_shed_refunds_the_tenant_budget_token() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 100, 1);
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
    let snap = table.snapshot().unwrap();
    let service = QueryService::new(
        &rot,
        ServiceConfig {
            admission: AdmissionConfig {
                max_concurrent: 1,
                max_queued: 0,
                expected_service_ms: 10,
                ..AdmissionConfig::default()
            },
            tenant_limit_per_sec: 2,
            default_timeout_ms: None,
        },
    );
    let key = trace_id(42);
    let query = Query::UuidEq { key: &key, k: 4 };

    // Hold the only slot so the next queries shed at admission
    // (queue bound 0 ⇒ immediate QueueFull, no blocking).
    let slot = service.admission().admit(store.now_ms(), None).unwrap();
    for _ in 0..2 {
        match service.query(&table, &snap, "trace_id", &query, "t0") {
            Err(RottnestError::Overloaded { .. }) => {}
            other => panic!("expected Overloaded shed, got {other:?}"),
        }
    }
    drop(slot);

    // The tenant budget is 2 per second: had the two sheds kept their
    // tokens, this in-window query would shed TenantBudget. The refund
    // keeps shed queries free of budget cost.
    let out = service
        .query(&table, &snap, "trace_id", &query, "t0")
        .expect("shed queries must not consume tenant budget");
    assert_eq!(out.matches.len(), 1);
    let stats = service.stats();
    assert_eq!(stats.queries_shed, 2);
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn deduped_follower_past_its_deadline_fails_typed() {
    // Metered store: the sim clock advances with traffic, so "one ms ago"
    // below is a real, already-expired deadline.
    let inner = MemoryStore::new();
    let slow = SlowStore::new(inner.clone(), Duration::from_millis(25));
    let table = Table::create(&slow, "tbl", &schema(), small_pages()).unwrap();
    table.append(&batch(0..200)).unwrap();
    let rot = Rottnest::new(&slow, "idx", rot_config());
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    let snap = table.snapshot().unwrap();
    let service = QueryService::new(&rot, wide_open_service());
    let key = trace_id(42);
    let query = Query::UuidEq { key: &key, k: 4 };

    std::thread::scope(|s| {
        // Leader: unbounded deadline, in flight for several slow reads.
        let leader = s.spawn(|| service.query(&table, &snap, "trace_id", &query, "t0"));
        // Follower: arrives while the leader is mid-flight, but with a
        // deadline that has already passed. Joining the leader yields an
        // Ok outcome — which must NOT be returned late as a success.
        std::thread::sleep(Duration::from_millis(20));
        let expired = slow.now_ms().saturating_sub(1);
        let follower =
            service.query_with_deadline(&table, &snap, "trace_id", &query, "t0", Some(expired));
        match follower {
            Err(RottnestError::DeadlineExceeded { .. }) => {}
            other => panic!("follower past its deadline must fail typed, got {other:?}"),
        }
        let out = leader.join().unwrap().unwrap();
        assert_eq!(out.matches.len(), 1, "leader unaffected by the follower");
    });
    let stats = service.stats();
    assert_eq!(stats.deadline_aborts, 1);
    assert_eq!(stats.completed, 1);
}
