//! End-to-end behaviour of the process-wide data-page cache:
//!
//! * warm repeated-probe traffic issues at least 2x fewer GETs per query
//!   than a page-cache-off client, with identical matches and identical
//!   stats (cache counters aside);
//! * a byte budget evicts rather than grows without bound;
//! * lake compaction and vacuum emit invalidation hints, so replaced or
//!   physically deleted data files stop pinning cache budget;
//! * index vacuum emits the same hint to the component cache.

use rottnest::{IndexKind, Query, Rottnest, SearchStats};
use rottnest_component::ComponentCache;
use rottnest_format::{PageCache, PageCacheSession, PageReader, PageTable};
use rottnest_integration::*;
use rottnest_object_store::{MemoryStore, ObjectStore};

/// Copies `stats` with every cache counter zeroed: the equivalence claim
/// is "identical except what the cache itself reports".
fn minus_cache_counters(stats: &SearchStats) -> SearchStats {
    SearchStats {
        cache_hits: 0,
        cache_misses: 0,
        cache_bytes_saved: 0,
        page_cache_hits: 0,
        page_cache_misses: 0,
        page_cache_bytes_saved: 0,
        ..*stats
    }
}

#[test]
fn warm_repeated_probes_halve_gets_per_query_with_identical_results() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 200, 2);

    let mut cfg_off = rot_config();
    cfg_off.search.page_cache = false;
    let rot_off = Rottnest::new(store.as_ref(), "idx", cfg_off);
    let rot_on = Rottnest::new(store.as_ref(), "idx", rot_config());

    rot_on
        .index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    let snap = table.snapshot().unwrap();
    // Skewed repeated-probe traffic: the same few hot patterns, repeated.
    let patterns: [&[u8]; 3] = [b"status S001", b"status S012", b"host h5 status"];
    let queries: Vec<Query<'_>> = patterns
        .iter()
        .cycle()
        .take(9)
        .map(|p| Query::Substring { pattern: p, k: 64 })
        .collect();

    // Warm the shared component cache (and the page cache, for the on
    // client) so the measured passes isolate steady-state probe reads.
    for q in &queries {
        rot_off.search(&table, &snap, "body", q).unwrap();
        rot_on.search(&table, &snap, "body", q).unwrap();
    }

    let before = store.stats();
    let off: Vec<_> = queries
        .iter()
        .map(|q| rot_off.search(&table, &snap, "body", q).unwrap())
        .collect();
    let off_gets = store.stats().since(&before).gets;

    let before = store.stats();
    let on: Vec<_> = queries
        .iter()
        .map(|q| rot_on.search(&table, &snap, "body", q).unwrap())
        .collect();
    let on_delta = store.stats().since(&before);

    assert!(off_gets > 0, "page-cache-off probes must still GET");
    assert!(
        off_gets >= 2 * on_delta.gets,
        "warm repeated probes must cut GETs/query at least 2x \
         (off: {off_gets}, on: {})",
        on_delta.gets
    );
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(a.matches, b.matches, "page cache changed results");
        assert_eq!(
            minus_cache_counters(&a.stats),
            minus_cache_counters(&b.stats),
            "page cache changed non-cache stats"
        );
        assert_eq!(a.stats.page_cache_hits, 0, "off client must not touch it");
    }
    let hits: u64 = on.iter().map(|o| o.stats.page_cache_hits).sum();
    let saved: u64 = on.iter().map(|o| o.stats.page_cache_bytes_saved).sum();
    assert!(hits > 0, "warm on-client probes must hit the page cache");
    assert!(saved > 0);
}

#[test]
fn page_cache_byte_budget_evicts_real_pages() {
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 4096, 1);
    let snap = table.snapshot().unwrap();
    let entry = snap.files().next().unwrap();
    let meta = table.file_meta(&entry.path).unwrap();
    let page_table = PageTable::from_meta(&meta, 1).unwrap();
    assert!(page_table.len() > 40, "need many pages to thrash");

    // A budget smaller than the file's page set: inserting every page must
    // evict, never exceed the cap, and never grow entry count unbounded.
    // Sized so every shard of the LRU can hold at least one page (a page
    // larger than a shard's slice of the budget is skipped, not cached).
    let total: u64 = page_table.pages().iter().map(|p| p.size).sum();
    let max_page: u64 = page_table.pages().iter().map(|p| p.size).max().unwrap();
    let budget = (max_page as usize) * rottnest_object_store::bytecache::DEFAULT_SHARDS;
    assert!((budget as u64) < total, "budget must force eviction");
    let cache = PageCache::with_capacity(budget);
    let ns = store.store_id();
    for loc in page_table.pages() {
        let bytes = store
            .get_range(&entry.path, loc.offset..loc.offset + loc.size)
            .unwrap();
        cache.put(ns, &entry.path, loc.offset, loc.size, 7, bytes);
        assert!(
            cache.bytes() <= budget,
            "cache grew to {} over budget {budget}",
            cache.bytes()
        );
    }
    assert!(cache.len() < page_table.len(), "nothing was evicted");
    assert!(!cache.is_empty(), "budget admits at least the newest pages");
}

#[test]
fn lake_compaction_invalidates_replaced_files() {
    let store = MemoryStore::new();
    let table = make_table(store.as_ref(), 200, 2);
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    let snap = table.snapshot().unwrap();
    let old_paths: Vec<String> = snap.files().map(|f| f.path.clone()).collect();

    let query = Query::Substring {
        pattern: b"status S001",
        k: 64,
    };
    let cold = rot.search(&table, &snap, "body", &query).unwrap();
    let ns = store.store_id();
    assert!(
        old_paths
            .iter()
            .any(|p| PageCache::global().entries_for_file(ns, p) > 0),
        "the probe must have populated the page cache"
    );

    let merged = table.compact(u64::MAX).unwrap().expect("two files qualify");
    for p in &old_paths {
        assert_eq!(
            PageCache::global().entries_for_file(ns, p),
            0,
            "compaction hint must drop {p}"
        );
    }
    // The merged file still answers the query correctly (same match count;
    // paths and row packing legitimately change).
    let snap2 = table.snapshot().unwrap();
    let after = rot.search(&table, &snap2, "body", &query).unwrap();
    assert_eq!(after.matches.len(), cold.matches.len());
    assert!(after.matches.iter().all(|m| m.path == merged));
}

#[test]
fn lake_vacuum_invalidates_deleted_files() {
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 200, 2);
    let snap = table.snapshot().unwrap();
    let old_paths: Vec<String> = snap.files().map(|f| f.path.clone()).collect();
    table.compact(u64::MAX).unwrap().expect("two files qualify");

    // Re-pin the dead files' pages (compaction's own hint already cleared
    // them) so the vacuum hint is observable in isolation.
    let ns = store.store_id();
    let session = PageCacheSession::new();
    for path in &old_paths {
        let meta = table.file_meta(path).unwrap();
        let page_table = PageTable::from_meta(&meta, 1).unwrap();
        PageReader::cached(store.as_ref(), &session)
            .read_page(path, &page_table, 0, rottnest_format::DataType::Utf8)
            .unwrap();
        assert!(PageCache::global().entries_for_file(ns, path) > 0);
    }

    store.clock().unwrap().advance_ms(10);
    let removed = table.vacuum(5).unwrap();
    assert!(removed >= old_paths.len() as u64);
    for path in &old_paths {
        assert_eq!(
            PageCache::global().entries_for_file(ns, path),
            0,
            "vacuum hint must drop {path}"
        );
    }
}

#[test]
fn index_vacuum_invalidates_component_cache() {
    let store = MemoryStore::unmetered();
    let mut cfg = rot_config();
    cfg.compact_below_bytes = u64::MAX; // everything qualifies for merge
    cfg.index_timeout_ms = 5;
    let rot = Rottnest::new(store.as_ref(), "idx", cfg);
    // Index after each append so compaction has several entries to merge.
    let table =
        rottnest_lake::Table::create(store.as_ref(), "tbl", &schema(), small_pages()).unwrap();
    for f in 0..4u64 {
        table.append(&batch(f * 64..(f + 1) * 64)).unwrap();
        rot.index(&table, IndexKind::Substring, "body")
            .unwrap()
            .unwrap();
    }
    let old_index_paths: Vec<String> = rot
        .meta()
        .scan()
        .unwrap()
        .into_iter()
        .map(|e| e.path)
        .collect();
    assert!(old_index_paths.len() >= 2);

    // Warm the component cache for the soon-to-die index files.
    let snap = table.snapshot().unwrap();
    rot.search(
        &table,
        &snap,
        "body",
        &Query::Substring {
            pattern: b"status S001",
            k: 64,
        },
    )
    .unwrap();
    let ns = store.store_id();
    assert!(
        old_index_paths
            .iter()
            .any(|p| ComponentCache::global().entries_for_file(ns, p) > 0),
        "search must have cached index components"
    );

    rot.compact(IndexKind::Substring, "body").unwrap();
    store.clock().unwrap().advance_ms(10);
    let report = rot.vacuum(&table).unwrap();
    assert!(report.objects_deleted >= 2, "old index files deleted");
    for p in &old_index_paths {
        assert_eq!(
            ComponentCache::global().entries_for_file(ns, p),
            0,
            "index vacuum hint must drop {p}"
        );
    }
}
