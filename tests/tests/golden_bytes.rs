//! Golden serialized-bytes pins for the succinct structures.
//!
//! The branch-light kernel pass (interleaved rank directory, fused wavelet
//! traversals, workspace SA-IS) is **in-memory only** — the on-disk format
//! must not move. These hashes were captured from the serializers *before*
//! that pass; if any of them changes, the component byte format changed
//! and every existing index on object storage silently breaks. Bump a
//! format version instead of updating a hash.

use rand::{Rng, SeedableRng};
use rottnest_component::Posting;
use rottnest_fm::store::{FmBuilder, FmOptions};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn bitvec_serialization_is_pinned() {
    use rottnest_fm::bitvec::BitVecBuilder;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
    let mut b = BitVecBuilder::with_capacity(10_000);
    for _ in 0..10_000 {
        b.push(rng.gen_bool(0.37));
    }
    let bv = b.finish();
    let mut buf = Vec::new();
    bv.encode(&mut buf);
    assert_eq!(buf.len(), 1258, "bitvec byte length moved");
    assert_eq!(fnv1a(&buf), 0x6ed5d412758d3330, "bitvec bytes moved");
}

#[test]
fn wavelet_serialization_is_pinned() {
    use rottnest_fm::wavelet::WaveletMatrix;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed + 1);
    let symbols: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
    let wm = WaveletMatrix::build(&symbols);
    let mut buf = Vec::new();
    wm.encode(&mut buf);
    assert_eq!(buf.len(), 10082, "wavelet byte length moved");
    assert_eq!(fnv1a(&buf), 0x99667d0c83105352, "wavelet bytes moved");
}

#[test]
fn fm_index_file_is_pinned() {
    // A full FM component file: SA-IS → BWT → per-block wavelet matrices
    // and mark bit vectors, through the real builder. Pins the entire
    // suffix-array + serialization pipeline end to end.
    let mut wl = rottnest_workloads::TextWorkload::new(0x5eed + 2, 20_000, 80);
    let mut b = FmBuilder::with_options(FmOptions {
        block_size: 4096,
        sample_rate: 16,
    });
    for page in 0..6u32 {
        for _ in 0..20 {
            b.add_document(Posting::new(page / 3, page % 3), wl.doc().as_bytes());
        }
    }
    let bytes = b.finish();
    assert_eq!(bytes.len(), 65306, "fm file byte length moved");
    assert_eq!(fnv1a(&bytes), 0xdf154daee6fb3f90, "fm file bytes moved");
}
