//! Concurrency chaos: searchers, indexers, compactors, lake writers and
//! vacuum all running at once (§IV: every API "is meant to be called in
//! parallel by independent processes and concurrently with" the others).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use rottnest::invariants::verify_all;
use rottnest::{IndexKind, Query, Rottnest};
use rottnest_integration::*;
use rottnest_lake::Table;
use rottnest_object_store::MemoryStore;

#[test]
fn full_chaos_run() {
    let store = MemoryStore::unmetered();
    let table = make_table(store.as_ref(), 200, 2);
    {
        let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
        rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
            .unwrap()
            .unwrap();
    }
    drop(table);

    let stop = AtomicBool::new(false);
    let appended = AtomicU64::new(200);
    let searches_ok = AtomicU64::new(0);

    crossbeam::scope(|scope| {
        // Lake writer: appends + occasional row deletes + lake compaction.
        scope.spawn(|_| {
            let table = Table::open(store.as_ref(), "tbl", small_pages()).unwrap();
            for round in 0..6u64 {
                let base = appended.fetch_add(50, Ordering::SeqCst);
                table.append(&batch(base..base + 50)).unwrap();
                if round == 2 {
                    let path = table
                        .snapshot()
                        .unwrap()
                        .files()
                        .next()
                        .unwrap()
                        .path
                        .clone();
                    let _ = table.delete_rows(&path, &[1, 2, 3]);
                }
                if round == 4 {
                    let _ = table.compact(1 << 20);
                }
            }
            stop.store(true, Ordering::SeqCst);
        });

        // Indexer: keeps the index fresh.
        scope.spawn(|_| {
            let table = Table::open(store.as_ref(), "tbl", small_pages()).unwrap();
            let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
            while !stop.load(Ordering::SeqCst) {
                let _ = rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id");
                std::thread::yield_now();
            }
        });

        // Compactor.
        scope.spawn(|_| {
            let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
            while !stop.load(Ordering::SeqCst) {
                let _ = rot.compact(IndexKind::Uuid { key_len: 16 }, "trace_id");
                std::thread::yield_now();
            }
        });

        // Searchers: every result must be correct for its snapshot.
        for t in 0..3u64 {
            let searches_ok = &searches_ok;
            let stop = &stop;
            let store = &store;
            scope.spawn(move |_| {
                let table = Table::open(store.as_ref(), "tbl", small_pages()).unwrap();
                let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
                let mut i = t * 13;
                while !stop.load(Ordering::SeqCst) {
                    let snap = table.snapshot().unwrap();
                    // Pick a key that exists in this snapshot: global row
                    // ids 0..(files*per_file) but per-file rows; use a key
                    // from the original 200 that survives all mutations
                    // except the delete of rows 1..3 of one file.
                    let probe = 10 + (i % 90);
                    let key = trace_id(probe);
                    let out = rot
                        .search(
                            &table,
                            &snap,
                            "trace_id",
                            &Query::UuidEq { key: &key, k: 2 },
                        )
                        .unwrap();
                    assert!(
                        !out.matches.is_empty(),
                        "key {probe} must exist in snapshot v{}",
                        snap.version()
                    );
                    searches_ok.fetch_add(1, Ordering::Relaxed);
                    i += 7;
                }
            });
        }
    })
    .unwrap();

    assert!(
        searches_ok.load(Ordering::Relaxed) > 10,
        "searchers made progress"
    );
    verify_all(store.as_ref(), "idx").unwrap();

    // Final state is fully correct: indexed search equals brute force.
    let table = Table::open(store.as_ref(), "tbl", small_pages()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "idx", rot_config());
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap();
    let snap = table.snapshot().unwrap();
    let bf = rottnest_baselines::BruteForce::new(&table, snap.clone());
    for i in (0..appended.load(Ordering::SeqCst)).step_by(61) {
        let key = trace_id(i);
        let r = rot
            .search(
                &table,
                &snap,
                "trace_id",
                &Query::UuidEq { key: &key, k: 5 },
            )
            .unwrap();
        let (b, _) = bf.scan_uuid("trace_id", &key, 5).unwrap();
        let mut rp: Vec<(String, u64)> =
            r.matches.iter().map(|m| (m.path.clone(), m.row)).collect();
        let mut bp: Vec<(String, u64)> = b.iter().map(|m| (m.path.clone(), m.row)).collect();
        rp.sort();
        bp.sort();
        assert_eq!(rp, bp, "key {i}");
    }
}
