//! Single-flight dedup of identical concurrent work, end to end:
//!
//! * N threads issuing one identical query concurrently cost no more
//!   store GETs than a single cold query, with bit-identical results —
//!   the convoy collapses onto one leader;
//! * under seeded 5% chaos the deduped results still match the fault-free
//!   baseline exactly;
//! * a leader that fails does not fan its error out — followers retry as
//!   their own leaders, so exactly one caller sees a one-shot fault;
//! * two page batches that merely *overlap* share the overlap: the second
//!   caller joins the in-flight fetches for the common pages and leads
//!   only its remainder, so every page crosses the wire exactly once.
//!
//! The store wrapper below adds *real* per-GET sleeps so the leader is
//! provably in flight while every follower arrives; without real latency
//! the threads would serialize and nothing would overlap. The overlap test
//! goes further and parks fetches on an explicit gate, making the
//! interleaving deterministic rather than merely likely.

use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::Duration;

use bytes::Bytes;
use rottnest::{IndexKind, Query, Rottnest, SearchOutcome};
use rottnest_format::{ColumnData, DataType, PageCacheSession, PageReader, PageTable};
use rottnest_integration::*;
use rottnest_object_store::{
    ChaosConfig, FaultKind, MemoryStore, ObjectMeta, ObjectStore, RangeRequest, RetryPolicy,
    SimClock, StatsSnapshot,
};
use rottnest_serve::{AdmissionConfig, QueryService, ServiceConfig};

/// `(file ordinal, row, score bits)` triples, sorted — bit-identity of a
/// result. Paths embed process-global sequence numbers, so cross-store
/// comparison goes by the file's position in manifest order.
fn norm(snap: &rottnest_lake::Snapshot, out: &SearchOutcome) -> Vec<(usize, u64, Option<u32>)> {
    let ordinal: std::collections::HashMap<&str, usize> = snap
        .files()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    let mut v: Vec<_> = out
        .matches
        .iter()
        .map(|m| (ordinal[m.path.as_str()], m.row, m.score.map(f32::to_bits)))
        .collect();
    v.sort_unstable();
    v
}

fn wide_open_service() -> ServiceConfig {
    ServiceConfig {
        admission: AdmissionConfig {
            max_concurrent: 64,
            max_queued: 64,
            expected_service_ms: 10,
            ..AdmissionConfig::default()
        },
        tenant_limit_per_sec: 0,
        default_timeout_ms: None,
    }
}

/// Builds the standard indexed table on `store` and returns the hot query
/// target (a present key).
fn build(store: &dyn ObjectStore) -> rottnest_lake::Table<'_> {
    let table = make_table(store, 200, 2);
    let rot = Rottnest::new(store, "idx", rot_config());
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    table
}

#[test]
fn hot_query_convoy_costs_no_more_gets_than_one_cold_query() {
    // Universe B: measure what one cold query costs, alone.
    let inner_b = MemoryStore::unmetered();
    let table_b = build(inner_b.as_ref());
    let snap_b = table_b.snapshot().unwrap();
    let rot_b = Rottnest::new(inner_b.as_ref(), "idx", rot_config());
    let key = trace_id(42);
    let before = inner_b.stats();
    let solo = rot_b
        .search(
            &table_b,
            &snap_b,
            "trace_id",
            &Query::UuidEq { key: &key, k: 4 },
        )
        .unwrap();
    let solo_gets = inner_b.stats().since(&before).gets;
    assert!(solo_gets > 0, "a cold probe must issue GETs");

    // Universe A: 8 threads, one barrier, one identical query — served
    // through the full pipeline over a store with real read latency.
    let inner_a = MemoryStore::unmetered();
    let table_a = build(inner_a.as_ref());
    let slow = SlowStore::new(inner_a.clone(), Duration::from_millis(25));
    let rot_a = Rottnest::new(&slow, "idx", rot_config());
    let service = QueryService::new(&rot_a, wide_open_service());
    let snap_a = table_a.snapshot().unwrap();

    const THREADS: usize = 8;
    let barrier = Barrier::new(THREADS);
    let before = inner_a.stats();
    let outcomes: Vec<SearchOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    service
                        .query(
                            &table_a,
                            &snap_a,
                            "trace_id",
                            &Query::UuidEq { key: &key, k: 4 },
                            "tenant-a",
                        )
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let convoy_gets = inner_a.stats().since(&before).gets;

    for out in &outcomes {
        assert_eq!(
            norm(&snap_a, out),
            norm(&snap_b, &solo),
            "deduped result diverged"
        );
    }
    assert!(
        convoy_gets <= solo_gets,
        "8 identical concurrent queries must cost no more GETs than one \
         (solo {solo_gets}, convoy {convoy_gets})"
    );
    let stats = service.stats();
    assert_eq!(stats.admitted, THREADS as u64);
    assert_eq!(stats.completed, THREADS as u64);
    assert!(
        stats.dedup_hits >= 1,
        "with 25ms read latency the followers must join the leader's flight"
    );
    assert_eq!(stats.search.dedup_hits, stats.dedup_hits);
}

#[test]
fn chaos_convoy_results_match_fault_free_baseline() {
    // Fault-free universe B for the baseline.
    let inner_b = MemoryStore::unmetered();
    let table_b = build(inner_b.as_ref());
    let snap_b = table_b.snapshot().unwrap();
    let rot_b = Rottnest::new(inner_b.as_ref(), "idx", rot_config());
    let key = trace_id(77);
    let baseline = rot_b
        .search(
            &table_b,
            &snap_b,
            "trace_id",
            &Query::UuidEq { key: &key, k: 4 },
        )
        .unwrap();
    assert_eq!(baseline.matches.len(), 1);

    // Chaotic universe A: 5% per-request fault rate, generous retries.
    let inner_a = MemoryStore::unmetered();
    let table_a = build(inner_a.as_ref());
    inner_a
        .faults()
        .set_chaos(Some(ChaosConfig::uniform(0x5EED, 0.05)));
    let slow = SlowStore::new(inner_a.clone(), Duration::from_millis(10));
    let mut cfg = rot_config();
    cfg.retry = RetryPolicy {
        max_attempts: 16,
        base_backoff_ms: 1,
        max_backoff_ms: 10,
        ..RetryPolicy::default()
    };
    let rot_a = Rottnest::new(&slow, "idx", cfg);
    let service = QueryService::new(&rot_a, wide_open_service());
    let snap_a = table_a.snapshot().unwrap();

    const THREADS: usize = 8;
    let barrier = Barrier::new(THREADS);
    let outcomes: Vec<SearchOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    service
                        .query(
                            &table_a,
                            &snap_a,
                            "trace_id",
                            &Query::UuidEq { key: &key, k: 4 },
                            "tenant-a",
                        )
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    inner_a.faults().set_chaos(None);

    // Paths embed process-global sequence numbers, so compare by row and
    // match count (single-file universe ordinals are equal by build).
    for out in &outcomes {
        assert_eq!(out.matches.len(), baseline.matches.len());
        assert_eq!(out.matches[0].row, baseline.matches[0].row);
    }
}

#[test]
fn leader_failure_is_not_fanned_out_to_followers() {
    let inner = MemoryStore::unmetered();
    // No index: the query brute-scans the table files, so an armed fault
    // on a data GET fails the search outright (nothing to degrade to).
    let table = make_table(inner.as_ref(), 200, 2);
    let slow = SlowStore::new(inner.clone(), Duration::from_millis(25));
    let mut cfg = rot_config();
    cfg.retry = RetryPolicy {
        max_attempts: 1, // one armed fault == one failed search
        ..RetryPolicy::default()
    };
    let rot = Rottnest::new(&slow, "idx", cfg);
    let service = QueryService::new(&rot, wide_open_service());
    let snap = table.snapshot().unwrap();
    let key = trace_id(42);

    inner
        .faults()
        .arm(FaultKind::TransientGetMatching("tbl/".into()));

    const THREADS: usize = 4;
    let barrier = Barrier::new(THREADS);
    let results: Vec<rottnest::Result<SearchOutcome>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    service.query(
                        &table,
                        &snap,
                        "trace_id",
                        &Query::UuidEq { key: &key, k: 4 },
                        "tenant-a",
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    inner.faults().disarm_all();

    let errs = results.iter().filter(|r| r.is_err()).count();
    assert_eq!(
        errs, 1,
        "exactly the leader sees the one-shot fault; followers retry"
    );
    let oks: Vec<&SearchOutcome> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    assert_eq!(oks.len(), THREADS - 1);
    for out in oks {
        assert_eq!(out.matches.len(), 1, "followers' retries stay correct");
        assert_eq!(out.matches[0].row, 42);
    }
}

/// Delegates to a [`MemoryStore`] but parks every `get_ranges` on a gate
/// until the test opens it, logging which ranges each call asked for. The
/// overlap test below uses it to *know* — not hope — that the first batch
/// is wired and in flight before the second batch arrives.
struct GateStore {
    inner: Arc<MemoryStore>,
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    entered: usize,
    open: bool,
    /// `(key, offset)` of every range that actually crossed the wire.
    fetched: Vec<(String, u64)>,
}

impl GateStore {
    fn new(inner: Arc<MemoryStore>) -> Self {
        Self {
            inner,
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        }
    }

    /// Blocks until `n` `get_ranges` calls have parked on the gate.
    fn wait_entered(&self, n: usize) {
        let mut st = self.state.lock().unwrap();
        while st.entered < n {
            let (guard, timeout) = self.cv.wait_timeout(st, Duration::from_secs(30)).unwrap();
            assert!(!timeout.timed_out(), "gate never saw {n} fetches");
            st = guard;
        }
    }

    /// Releases every parked (and future) fetch.
    fn open(&self) {
        self.state.lock().unwrap().open = true;
        self.cv.notify_all();
    }

    fn fetched(&self) -> Vec<(String, u64)> {
        self.state.lock().unwrap().fetched.clone()
    }
}

impl ObjectStore for GateStore {
    fn put(&self, key: &str, data: Bytes) -> rottnest_object_store::Result<()> {
        self.inner.put(key, data)
    }
    fn put_if_absent(&self, key: &str, data: Bytes) -> rottnest_object_store::Result<()> {
        self.inner.put_if_absent(key, data)
    }
    fn get(&self, key: &str) -> rottnest_object_store::Result<Bytes> {
        self.inner.get(key)
    }
    fn get_range(
        &self,
        key: &str,
        range: std::ops::Range<u64>,
    ) -> rottnest_object_store::Result<Bytes> {
        self.inner.get_range(key, range)
    }
    fn get_ranges(&self, requests: &[RangeRequest]) -> rottnest_object_store::Result<Vec<Bytes>> {
        {
            let mut st = self.state.lock().unwrap();
            for r in requests {
                st.fetched.push((r.key.clone(), r.range.start));
            }
            st.entered += 1;
            self.cv.notify_all();
            while !st.open {
                let (guard, timeout) = self.cv.wait_timeout(st, Duration::from_secs(30)).unwrap();
                assert!(!timeout.timed_out(), "gate never opened");
                st = guard;
            }
        }
        self.inner.get_ranges(requests)
    }
    fn head(&self, key: &str) -> rottnest_object_store::Result<ObjectMeta> {
        self.inner.head(key)
    }
    fn list(&self, prefix: &str) -> rottnest_object_store::Result<Vec<ObjectMeta>> {
        self.inner.list(prefix)
    }
    fn delete(&self, key: &str) -> rottnest_object_store::Result<()> {
        self.inner.delete(key)
    }
    fn now_ms(&self) -> u64 {
        self.inner.now_ms()
    }
    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }
    fn clock(&self) -> Option<&SimClock> {
        self.inner.clock()
    }
    fn record_retry(&self, retries: u64, backoff_ms: u64) {
        self.inner.record_retry(retries, backoff_ms)
    }
    fn coalesce_gap(&self) -> Option<u64> {
        self.inner.coalesce_gap()
    }
    fn store_id(&self) -> u64 {
        self.inner.store_id()
    }
    fn record_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.inner.record_cache(hits, misses, bytes_saved)
    }
    fn record_coalesced(&self, n: u64) {
        self.inner.record_coalesced(n)
    }
    fn record_page_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.inner.record_page_cache(hits, misses, bytes_saved)
    }
    fn record_page_cache_bypass(&self, n: u64) {
        self.inner.record_page_cache_bypass(n)
    }
    fn record_dedup(&self, n: u64) {
        self.inner.record_dedup(n)
    }
}

#[test]
fn overlapping_page_batches_fetch_the_shared_pages_once() {
    let inner = MemoryStore::unmetered();
    let table = make_table(inner.as_ref(), 2048, 1);
    let snap = table.snapshot().unwrap();
    let entry = snap.files().next().unwrap();
    let meta = table.file_meta(&entry.path).unwrap();
    // Column 1 is `body` (Utf8) — many small pages under small_pages().
    let pt = PageTable::from_meta(&meta, 1).unwrap();
    assert!(pt.len() >= 6, "need at least 6 pages to overlap");
    let key = entry.path.clone();

    // What each page decodes to, read solo and uncached.
    let direct = PageReader::new(inner.as_ref());
    let want: Vec<ColumnData> = (0..6)
        .map(|p| direct.read_page(&key, &pt, p, DataType::Utf8).unwrap())
        .collect();

    // Batch A wants pages {0,1,2,3}; batch B wants {2,3,4,5}. The gate
    // holds A's fetch on the wire until B has arrived, so B *must* join
    // A's in-flight pages {2,3} and lead only its remainder {4,5}.
    let gate = GateStore::new(inner.clone());
    let before = inner.stats();
    let (got_a, got_b) = std::thread::scope(|s| {
        let (gate, key, pt) = (&gate, key.as_str(), &pt);
        let a = s.spawn(move || {
            let session = PageCacheSession::new();
            let reader = PageReader::cached(gate, &session);
            let reqs: Vec<(&str, &PageTable, usize)> = (0..4).map(|p| (key, pt, p)).collect();
            reader.read_pages(&reqs, DataType::Utf8).unwrap()
        });
        gate.wait_entered(1);
        let b = s.spawn(move || {
            let session = PageCacheSession::new();
            let reader = PageReader::cached(gate, &session);
            let reqs: Vec<(&str, &PageTable, usize)> = (2..6).map(|p| (key, pt, p)).collect();
            reader.read_pages(&reqs, DataType::Utf8).unwrap()
        });
        // B led {4,5} before waiting on its joins (run_partial always
        // fetches owned pages first), so a second wire call must appear.
        gate.wait_entered(2);
        gate.open();
        (a.join().unwrap(), b.join().unwrap())
    });

    assert_eq!(got_a, want[0..4], "batch A decoded wrong pages");
    assert_eq!(got_b, want[2..6], "batch B decoded wrong pages");

    // Every page crossed the wire exactly once: 6 distinct offsets, no
    // repeats — the overlap {2,3} was fetched by A alone.
    let fetched = gate.fetched();
    let mut offsets: Vec<u64> = fetched.iter().map(|&(_, off)| off).collect();
    offsets.sort_unstable();
    let mut expect: Vec<u64> = (0..6).map(|p| pt.page(p).unwrap().offset).collect();
    expect.sort_unstable();
    assert_eq!(
        offsets, expect,
        "the union of both batches must be fetched exactly once"
    );
    assert!(fetched.iter().all(|(k, _)| k == &key));
    assert_eq!(
        inner.stats().since(&before).dedup_hits,
        2,
        "B must record joining A's flights for pages 2 and 3"
    );
}
