//! Single-flight dedup of identical concurrent work, end to end:
//!
//! * N threads issuing one identical query concurrently cost no more
//!   store GETs than a single cold query, with bit-identical results —
//!   the convoy collapses onto one leader;
//! * under seeded 5% chaos the deduped results still match the fault-free
//!   baseline exactly;
//! * a leader that fails does not fan its error out — followers retry as
//!   their own leaders, so exactly one caller sees a one-shot fault.
//!
//! The store wrapper below adds *real* per-GET sleeps so the leader is
//! provably in flight while every follower arrives; without real latency
//! the threads would serialize and nothing would overlap.

use std::sync::Barrier;
use std::time::Duration;

use rottnest::{IndexKind, Query, Rottnest, SearchOutcome};
use rottnest_integration::*;
use rottnest_object_store::{ChaosConfig, FaultKind, MemoryStore, ObjectStore, RetryPolicy};
use rottnest_serve::{AdmissionConfig, QueryService, ServiceConfig};

/// `(file ordinal, row, score bits)` triples, sorted — bit-identity of a
/// result. Paths embed process-global sequence numbers, so cross-store
/// comparison goes by the file's position in manifest order.
fn norm(snap: &rottnest_lake::Snapshot, out: &SearchOutcome) -> Vec<(usize, u64, Option<u32>)> {
    let ordinal: std::collections::HashMap<&str, usize> = snap
        .files()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    let mut v: Vec<_> = out
        .matches
        .iter()
        .map(|m| (ordinal[m.path.as_str()], m.row, m.score.map(f32::to_bits)))
        .collect();
    v.sort_unstable();
    v
}

fn wide_open_service() -> ServiceConfig {
    ServiceConfig {
        admission: AdmissionConfig {
            max_concurrent: 64,
            max_queued: 64,
            expected_service_ms: 10,
        },
        tenant_limit_per_sec: 0,
        default_timeout_ms: None,
    }
}

/// Builds the standard indexed table on `store` and returns the hot query
/// target (a present key).
fn build(store: &dyn ObjectStore) -> rottnest_lake::Table<'_> {
    let table = make_table(store, 200, 2);
    let rot = Rottnest::new(store, "idx", rot_config());
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    table
}

#[test]
fn hot_query_convoy_costs_no_more_gets_than_one_cold_query() {
    // Universe B: measure what one cold query costs, alone.
    let inner_b = MemoryStore::unmetered();
    let table_b = build(inner_b.as_ref());
    let snap_b = table_b.snapshot().unwrap();
    let rot_b = Rottnest::new(inner_b.as_ref(), "idx", rot_config());
    let key = trace_id(42);
    let before = inner_b.stats();
    let solo = rot_b
        .search(
            &table_b,
            &snap_b,
            "trace_id",
            &Query::UuidEq { key: &key, k: 4 },
        )
        .unwrap();
    let solo_gets = inner_b.stats().since(&before).gets;
    assert!(solo_gets > 0, "a cold probe must issue GETs");

    // Universe A: 8 threads, one barrier, one identical query — served
    // through the full pipeline over a store with real read latency.
    let inner_a = MemoryStore::unmetered();
    let table_a = build(inner_a.as_ref());
    let slow = SlowStore::new(inner_a.clone(), Duration::from_millis(25));
    let rot_a = Rottnest::new(&slow, "idx", rot_config());
    let service = QueryService::new(&rot_a, wide_open_service());
    let snap_a = table_a.snapshot().unwrap();

    const THREADS: usize = 8;
    let barrier = Barrier::new(THREADS);
    let before = inner_a.stats();
    let outcomes: Vec<SearchOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    service
                        .query(
                            &table_a,
                            &snap_a,
                            "trace_id",
                            &Query::UuidEq { key: &key, k: 4 },
                            "tenant-a",
                        )
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let convoy_gets = inner_a.stats().since(&before).gets;

    for out in &outcomes {
        assert_eq!(
            norm(&snap_a, out),
            norm(&snap_b, &solo),
            "deduped result diverged"
        );
    }
    assert!(
        convoy_gets <= solo_gets,
        "8 identical concurrent queries must cost no more GETs than one \
         (solo {solo_gets}, convoy {convoy_gets})"
    );
    let stats = service.stats();
    assert_eq!(stats.admitted, THREADS as u64);
    assert_eq!(stats.completed, THREADS as u64);
    assert!(
        stats.dedup_hits >= 1,
        "with 25ms read latency the followers must join the leader's flight"
    );
    assert_eq!(stats.search.dedup_hits, stats.dedup_hits);
}

#[test]
fn chaos_convoy_results_match_fault_free_baseline() {
    // Fault-free universe B for the baseline.
    let inner_b = MemoryStore::unmetered();
    let table_b = build(inner_b.as_ref());
    let snap_b = table_b.snapshot().unwrap();
    let rot_b = Rottnest::new(inner_b.as_ref(), "idx", rot_config());
    let key = trace_id(77);
    let baseline = rot_b
        .search(
            &table_b,
            &snap_b,
            "trace_id",
            &Query::UuidEq { key: &key, k: 4 },
        )
        .unwrap();
    assert_eq!(baseline.matches.len(), 1);

    // Chaotic universe A: 5% per-request fault rate, generous retries.
    let inner_a = MemoryStore::unmetered();
    let table_a = build(inner_a.as_ref());
    inner_a
        .faults()
        .set_chaos(Some(ChaosConfig::uniform(0x5EED, 0.05)));
    let slow = SlowStore::new(inner_a.clone(), Duration::from_millis(10));
    let mut cfg = rot_config();
    cfg.retry = RetryPolicy {
        max_attempts: 16,
        base_backoff_ms: 1,
        max_backoff_ms: 10,
        ..RetryPolicy::default()
    };
    let rot_a = Rottnest::new(&slow, "idx", cfg);
    let service = QueryService::new(&rot_a, wide_open_service());
    let snap_a = table_a.snapshot().unwrap();

    const THREADS: usize = 8;
    let barrier = Barrier::new(THREADS);
    let outcomes: Vec<SearchOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    service
                        .query(
                            &table_a,
                            &snap_a,
                            "trace_id",
                            &Query::UuidEq { key: &key, k: 4 },
                            "tenant-a",
                        )
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    inner_a.faults().set_chaos(None);

    // Paths embed process-global sequence numbers, so compare by row and
    // match count (single-file universe ordinals are equal by build).
    for out in &outcomes {
        assert_eq!(out.matches.len(), baseline.matches.len());
        assert_eq!(out.matches[0].row, baseline.matches[0].row);
    }
}

#[test]
fn leader_failure_is_not_fanned_out_to_followers() {
    let inner = MemoryStore::unmetered();
    // No index: the query brute-scans the table files, so an armed fault
    // on a data GET fails the search outright (nothing to degrade to).
    let table = make_table(inner.as_ref(), 200, 2);
    let slow = SlowStore::new(inner.clone(), Duration::from_millis(25));
    let mut cfg = rot_config();
    cfg.retry = RetryPolicy {
        max_attempts: 1, // one armed fault == one failed search
        ..RetryPolicy::default()
    };
    let rot = Rottnest::new(&slow, "idx", cfg);
    let service = QueryService::new(&rot, wide_open_service());
    let snap = table.snapshot().unwrap();
    let key = trace_id(42);

    inner
        .faults()
        .arm(FaultKind::TransientGetMatching("tbl/".into()));

    const THREADS: usize = 4;
    let barrier = Barrier::new(THREADS);
    let results: Vec<rottnest::Result<SearchOutcome>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    service.query(
                        &table,
                        &snap,
                        "trace_id",
                        &Query::UuidEq { key: &key, k: 4 },
                        "tenant-a",
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    inner.faults().disarm_all();

    let errs = results.iter().filter(|r| r.is_err()).count();
    assert_eq!(
        errs, 1,
        "exactly the leader sees the one-shot fault; followers retry"
    );
    let oks: Vec<&SearchOutcome> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    assert_eq!(oks.len(), THREADS - 1);
    for out in oks {
        assert_eq!(out.matches.len(), 1, "followers' retries stay correct");
        assert_eq!(out.matches[0].row, 42);
    }
}
