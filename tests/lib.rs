//! Shared helpers for the cross-crate integration tests in `tests/`.

use rottnest_format::{ColumnData, DataType, Field, RecordBatch, Schema, WriterOptions};
use rottnest_lake::{Table, TableConfig};
use rottnest_object_store::ObjectStore;

/// Vector dimensionality used across integration tests.
pub const DIM: usize = 8;

/// The three-column schema every integration scenario uses.
pub fn schema() -> Schema {
    Schema::new(vec![
        Field::new("trace_id", DataType::Binary),
        Field::new("body", DataType::Utf8),
        Field::new("embedding", DataType::VectorF32 { dim: DIM as u32 }),
    ])
}

/// Deterministic 16-byte key for row `i`.
pub fn trace_id(i: u64) -> Vec<u8> {
    let mut id = vec![0u8; 16];
    id[..8].copy_from_slice(&i.to_be_bytes());
    id[8..].copy_from_slice(&i.wrapping_mul(0x9e3779b97f4a7c15).to_be_bytes());
    id
}

/// Deterministic log line for row `i`.
pub fn body(i: u64) -> String {
    format!(
        "row {i} host h{} status S{:03} payload lorem ipsum dolor",
        i % 13,
        i % 37
    )
}

/// Deterministic clustered embedding for row `i`.
pub fn embedding(i: u64) -> Vec<f32> {
    let cluster = (i % 6) as f32 * 7.0;
    (0..DIM)
        .map(|d| cluster + ((i.wrapping_mul(2654435761) >> (d % 16)) % 100) as f32 / 100.0)
        .collect()
}

/// A batch of rows `range`.
pub fn batch(range: std::ops::Range<u64>) -> RecordBatch {
    RecordBatch::new(
        schema(),
        vec![
            ColumnData::from_blobs(range.clone().map(trace_id)),
            ColumnData::from_strings(range.clone().map(body)),
            ColumnData::from_vectors(DIM as u32, range.map(embedding).collect::<Vec<_>>()).unwrap(),
        ],
    )
    .unwrap()
}

/// Table config with small pages so probes exercise page granularity.
pub fn small_pages() -> TableConfig {
    TableConfig {
        writer: WriterOptions {
            page_raw_bytes: 2048,
            row_group_rows: 512,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Creates the standard test table with `rows` rows across `files` files.
pub fn make_table<'a>(store: &'a dyn ObjectStore, rows: u64, files: u64) -> Table<'a> {
    let t = Table::create(store, "tbl", &schema(), small_pages()).unwrap();
    let per = rows / files;
    for f in 0..files {
        t.append(&batch(f * per..(f + 1) * per)).unwrap();
    }
    t
}

/// Rottnest config for integration scale.
pub fn rot_config() -> rottnest::RottnestConfig {
    rottnest::RottnestConfig {
        min_vector_rows: 32,
        ivf: rottnest_ivfpq::IvfPqParams {
            nlist: 16,
            m: 4,
            train_iters: 4,
            seed: 5,
        },
        ..Default::default()
    }
}
