//! Shared helpers for the cross-crate integration tests in `tests/`.

use std::ops::Range;
use std::time::Duration;

use bytes::Bytes;
use rottnest_format::{ColumnData, DataType, Field, RecordBatch, Schema, WriterOptions};
use rottnest_lake::{Table, TableConfig};
use rottnest_object_store::{
    MemoryStore, ObjectMeta, ObjectStore, RangeRequest, SimClock, StatsSnapshot,
};

/// Vector dimensionality used across integration tests.
pub const DIM: usize = 8;

/// The three-column schema every integration scenario uses.
pub fn schema() -> Schema {
    Schema::new(vec![
        Field::new("trace_id", DataType::Binary),
        Field::new("body", DataType::Utf8),
        Field::new("embedding", DataType::VectorF32 { dim: DIM as u32 }),
    ])
}

/// Deterministic 16-byte key for row `i`.
pub fn trace_id(i: u64) -> Vec<u8> {
    let mut id = vec![0u8; 16];
    id[..8].copy_from_slice(&i.to_be_bytes());
    id[8..].copy_from_slice(&i.wrapping_mul(0x9e3779b97f4a7c15).to_be_bytes());
    id
}

/// Deterministic log line for row `i`.
pub fn body(i: u64) -> String {
    format!(
        "row {i} host h{} status S{:03} payload lorem ipsum dolor",
        i % 13,
        i % 37
    )
}

/// Deterministic clustered embedding for row `i`.
pub fn embedding(i: u64) -> Vec<f32> {
    let cluster = (i % 6) as f32 * 7.0;
    (0..DIM)
        .map(|d| cluster + ((i.wrapping_mul(2654435761) >> (d % 16)) % 100) as f32 / 100.0)
        .collect()
}

/// A batch of rows `range`.
pub fn batch(range: std::ops::Range<u64>) -> RecordBatch {
    RecordBatch::new(
        schema(),
        vec![
            ColumnData::from_blobs(range.clone().map(trace_id)),
            ColumnData::from_strings(range.clone().map(body)),
            ColumnData::from_vectors(DIM as u32, range.map(embedding).collect::<Vec<_>>()).unwrap(),
        ],
    )
    .unwrap()
}

/// Table config with small pages so probes exercise page granularity.
pub fn small_pages() -> TableConfig {
    TableConfig {
        writer: WriterOptions {
            page_raw_bytes: 2048,
            row_group_rows: 512,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Creates the standard test table with `rows` rows across `files` files.
pub fn make_table<'a>(store: &'a dyn ObjectStore, rows: u64, files: u64) -> Table<'a> {
    let t = Table::create(store, "tbl", &schema(), small_pages()).unwrap();
    let per = rows / files;
    for f in 0..files {
        t.append(&batch(f * per..(f + 1) * per)).unwrap();
    }
    t
}

/// Delegates to a [`MemoryStore`] but sleeps real wall-clock time on every
/// read, so concurrent identical requests genuinely overlap in flight —
/// the precondition for provoking single-flight races in tests.
pub struct SlowStore {
    inner: std::sync::Arc<MemoryStore>,
    read_sleep: Duration,
}

impl SlowStore {
    /// Wraps `inner`, sleeping `read_sleep` before every read.
    pub fn new(inner: std::sync::Arc<MemoryStore>, read_sleep: Duration) -> Self {
        Self { inner, read_sleep }
    }
}

impl ObjectStore for SlowStore {
    fn put(&self, key: &str, data: Bytes) -> rottnest_object_store::Result<()> {
        self.inner.put(key, data)
    }
    fn put_if_absent(&self, key: &str, data: Bytes) -> rottnest_object_store::Result<()> {
        self.inner.put_if_absent(key, data)
    }
    fn get(&self, key: &str) -> rottnest_object_store::Result<Bytes> {
        std::thread::sleep(self.read_sleep);
        self.inner.get(key)
    }
    fn get_range(&self, key: &str, range: Range<u64>) -> rottnest_object_store::Result<Bytes> {
        std::thread::sleep(self.read_sleep);
        self.inner.get_range(key, range)
    }
    fn get_ranges(&self, requests: &[RangeRequest]) -> rottnest_object_store::Result<Vec<Bytes>> {
        std::thread::sleep(self.read_sleep);
        self.inner.get_ranges(requests)
    }
    fn head(&self, key: &str) -> rottnest_object_store::Result<ObjectMeta> {
        self.inner.head(key)
    }
    fn list(&self, prefix: &str) -> rottnest_object_store::Result<Vec<ObjectMeta>> {
        self.inner.list(prefix)
    }
    fn delete(&self, key: &str) -> rottnest_object_store::Result<()> {
        self.inner.delete(key)
    }
    fn now_ms(&self) -> u64 {
        self.inner.now_ms()
    }
    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }
    fn clock(&self) -> Option<&SimClock> {
        self.inner.clock()
    }
    fn record_retry(&self, retries: u64, backoff_ms: u64) {
        self.inner.record_retry(retries, backoff_ms)
    }
    fn coalesce_gap(&self) -> Option<u64> {
        self.inner.coalesce_gap()
    }
    fn store_id(&self) -> u64 {
        self.inner.store_id()
    }
    fn record_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.inner.record_cache(hits, misses, bytes_saved)
    }
    fn record_coalesced(&self, n: u64) {
        self.inner.record_coalesced(n)
    }
    fn record_page_cache(&self, hits: u64, misses: u64, bytes_saved: u64) {
        self.inner.record_page_cache(hits, misses, bytes_saved)
    }
    fn record_page_cache_bypass(&self, n: u64) {
        self.inner.record_page_cache_bypass(n)
    }
    fn record_dedup(&self, n: u64) {
        self.inner.record_dedup(n)
    }
    fn record_health(&self, breaker_rejections: u64, retry_tokens_denied: u64) {
        self.inner
            .record_health(breaker_rejections, retry_tokens_denied)
    }
}

/// Rottnest config for integration scale.
pub fn rot_config() -> rottnest::RottnestConfig {
    rottnest::RottnestConfig {
        min_vector_rows: 32,
        ivf: rottnest_ivfpq::IvfPqParams {
            nlist: 16,
            m: 4,
            train_iters: 4,
            seed: 5,
        },
        ..Default::default()
    }
}
