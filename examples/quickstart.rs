//! Quickstart: create a data lake table, bolt a Rottnest index onto it,
//! and run all three search types.
//!
//! ```sh
//! cargo run --release -p rottnest-examples --bin quickstart
//! ```

use rottnest::{IndexKind, Query, Rottnest, RottnestConfig};
use rottnest_format::{ColumnData, DataType, Field, RecordBatch, Schema};
use rottnest_ivfpq::SearchParams;
use rottnest_lake::{Table, TableConfig};
use rottnest_object_store::MemoryStore;

fn main() {
    // An object store with S3 semantics (in-memory; see log_search.rs for
    // the filesystem backend).
    let store = MemoryStore::unmetered();

    // 1. A lake table: one commit log + immutable columnar files.
    let schema = Schema::new(vec![
        Field::new("trace_id", DataType::Binary),
        Field::new("body", DataType::Utf8),
        Field::new("embedding", DataType::VectorF32 { dim: 8 }),
    ]);
    let table = Table::create(store.as_ref(), "demo", &schema, TableConfig::default())
        .expect("create table");

    let rows = 500u64;
    let batch = RecordBatch::new(
        schema.clone(),
        vec![
            ColumnData::from_blobs((0..rows).map(|i| {
                let mut id = [0u8; 16];
                id[8..].copy_from_slice(&i.to_be_bytes());
                id.to_vec()
            })),
            ColumnData::from_strings(
                (0..rows).map(|i| format!("request {i} served by backend-{}", i % 5)),
            ),
            ColumnData::from_vectors(
                8,
                (0..rows)
                    .map(|i| {
                        let c = (i % 4) as f32 * 5.0;
                        vec![c, c, c, c, 0.1 * i as f32 % 1.0, 0.0, 0.0, 0.0]
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
        ],
    )
    .unwrap();
    table.append(&batch).expect("append");
    println!(
        "lake: {} rows in {} files",
        rows,
        table.snapshot().unwrap().num_files()
    );

    // 2. Rottnest: index the three columns (three independent index files).
    let config = RottnestConfig {
        min_vector_rows: 100,
        ivf: rottnest_ivfpq::IvfPqParams {
            nlist: 16,
            m: 4,
            train_iters: 4,
            seed: 1,
        },
        ..RottnestConfig::default()
    };
    let rot = Rottnest::new(store.as_ref(), "demo-idx", config);
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Substring, "body")
        .unwrap()
        .unwrap();
    rot.index(&table, IndexKind::Vector { dim: 8 }, "embedding")
        .unwrap()
        .unwrap();
    println!(
        "rottnest: {} index files, {} bytes",
        rot.meta().scan().unwrap().len(),
        rot.index_bytes().unwrap()
    );

    // 3. Search.
    let snap = table.snapshot().unwrap();

    let mut key = [0u8; 16];
    key[8..].copy_from_slice(&123u64.to_be_bytes());
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq { key: &key, k: 5 },
        )
        .unwrap();
    println!(
        "uuid lookup   → row {} of {}",
        out.matches[0].row, out.matches[0].path
    );

    let out = rot
        .search(
            &table,
            &snap,
            "body",
            &Query::Substring {
                pattern: b"backend-3",
                k: 3,
            },
        )
        .unwrap();
    println!(
        "substring     → {} matches (first: row {}), {} pages probed",
        out.matches.len(),
        out.matches[0].row,
        out.stats.pages_probed
    );

    let query = [10.0f32, 10.0, 10.0, 10.0, 0.5, 0.0, 0.0, 0.0];
    let out = rot
        .search(
            &table,
            &snap,
            "embedding",
            &Query::VectorNn {
                query: &query,
                params: SearchParams {
                    k: 3,
                    nprobe: 8,
                    refine: 32,
                },
            },
        )
        .unwrap();
    println!(
        "vector top-3  → rows {:?} (squared distances {:?})",
        out.matches.iter().map(|m| m.row).collect::<Vec<_>>(),
        out.matches
            .iter()
            .map(|m| m.score.unwrap())
            .collect::<Vec<_>>()
    );
}
