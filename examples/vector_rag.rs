//! Retrieval-augmented generation over a lake of embeddings (§II-B):
//! approximate nearest-neighbor search with the `nprobe`/`refine` recall
//! knobs, checked against exact brute-force ground truth.
//!
//! ```sh
//! cargo run --release -p rottnest-examples --bin vector_rag
//! ```

use rottnest::{IndexKind, Query, Rottnest, RottnestConfig};
use rottnest_baselines::BruteForce;
use rottnest_ivfpq::{recall_at_k, SearchParams};
use rottnest_lake::{Table, TableConfig};
use rottnest_object_store::MemoryStore;
use rottnest_workloads::{vector_batch, VectorWorkload};

const DIM: usize = 64;

fn main() {
    let store = MemoryStore::unmetered();
    let schema = vector_batch("embedding", DIM as u32, vec![])
        .schema()
        .clone();
    let table = Table::create(store.as_ref(), "docs", &schema, TableConfig::default()).unwrap();

    // 20k "document chunk" embeddings in 4 files.
    let mut wl = VectorWorkload::new(11, DIM, 32, 0.5);
    for _ in 0..4 {
        table
            .append(&vector_batch("embedding", DIM as u32, wl.vectors(5_000)))
            .unwrap();
    }

    let config = RottnestConfig {
        ivf: rottnest_ivfpq::IvfPqParams {
            nlist: 128,
            m: 8,
            train_iters: 6,
            seed: 3,
        },
        ..RottnestConfig::default()
    };
    let rot = Rottnest::new(store.as_ref(), "docs-idx", config);
    rot.index(&table, IndexKind::Vector { dim: DIM as u32 }, "embedding")
        .unwrap()
        .unwrap();
    println!("indexed 20k embeddings (dim {DIM}) into one IVF-PQ index file");

    let snap = table.snapshot().unwrap();
    let bf = BruteForce::new(&table, snap.clone());
    let queries: Vec<Vec<f32>> = (0..16).map(|_| wl.query()).collect();

    println!(
        "\n{:<24} {:>10} {:>12} {:>12}",
        "setting", "recall@10", "pages/query", "postings"
    );
    for (name, nprobe, refine) in [
        ("fast (nprobe=2)", 2usize, 16usize),
        ("balanced (nprobe=8)", 8, 64),
        ("thorough (nprobe=32)", 32, 200),
    ] {
        let mut recall = 0.0;
        let mut pages = 0u64;
        let mut postings = 0u64;
        for q in &queries {
            let truth: Vec<(String, u64)> = bf
                .scan_vector("embedding", q, 10)
                .unwrap()
                .0
                .into_iter()
                .map(|m| (m.path, m.row))
                .collect();
            let out = rot
                .search(
                    &table,
                    &snap,
                    "embedding",
                    &Query::VectorNn {
                        query: q,
                        params: SearchParams {
                            k: 10,
                            nprobe,
                            refine,
                        },
                    },
                )
                .unwrap();
            let found: Vec<(String, u64)> =
                out.matches.into_iter().map(|m| (m.path, m.row)).collect();
            recall += recall_at_k(&found, &truth) / queries.len() as f64;
            pages += out.stats.pages_probed;
            postings += out.stats.postings_returned;
        }
        println!(
            "{:<24} {:>10.3} {:>12.1} {:>12.1}",
            name,
            recall,
            pages as f64 / queries.len() as f64,
            postings as f64 / queries.len() as f64
        );
    }
    println!("\nhigher effort → higher recall at the cost of more in-situ page fetches,");
    println!("exactly the cpq_r / recall trade-off of the paper's Figure 9");
}
