//! LLM pretraining data exploration (§II-B): detect whether evaluation-set
//! strings leaked into a pretraining corpus stored as a text column in a
//! data lake, using the FM-index substring search — and show where this
//! workload lands on the TCO phase diagram.
//!
//! ```sh
//! cargo run --release -p rottnest-examples --bin pretrain_dedup
//! ```

use rottnest::{IndexKind, Query, Rottnest};
use rottnest_lake::{Table, TableConfig};
use rottnest_object_store::{MemoryStore, ObjectStore};
use rottnest_tco::{
    cpm_storage, cpq_from_latency, prices, ApproachCosts, Approaches, PhaseDiagram,
};
use rottnest_workloads::{text_batch, TextWorkload};

fn main() {
    let store = MemoryStore::new(); // metered: we want simulated latencies
    let schema = text_batch("text", &[]).schema().clone();
    let table = Table::create(store.as_ref(), "corpus", &schema, TableConfig::default()).unwrap();

    // A synthetic "web crawl" with three eval-set strings planted into
    // specific shards (the contamination we must find).
    let eval_set = [
        "The quick crimson fox benchmarks 42 zebras",
        "Question: what is the airspeed of an unladen swallow?",
        "This sentence is definitely not in the training data",
    ];
    let mut wl = TextWorkload::new(7, 30_000, 80);
    for shard in 0..6 {
        let docs = if shard == 2 {
            wl.docs_with_needle(500, eval_set[0], &[100])
        } else if shard == 4 {
            let mut d = wl.docs_with_needle(500, eval_set[1], &[250]);
            let extra = wl.docs_with_needle(1, eval_set[1], &[0]);
            d[400] = extra[0].clone();
            d
        } else {
            wl.docs(500)
        };
        table.append(&text_batch("text", &docs)).unwrap();
    }
    let data_bytes = store.bytes_under("corpus/data/");
    println!(
        "corpus: 3000 documents across 6 shards, {:.1} MiB compressed",
        data_bytes as f64 / (1 << 20) as f64
    );

    // Index once; every later contamination check is a cheap search.
    let rot = Rottnest::new(store.as_ref(), "corpus-idx", rottnest_bench_config());
    let clock = store.clock().unwrap();
    let t0 = clock.now_micros();
    rot.index(&table, IndexKind::Substring, "text")
        .unwrap()
        .unwrap();
    let build_s = (clock.now_micros() - t0) as f64 / 1e6;
    let index_bytes = rot.index_bytes().unwrap();
    println!(
        "index built in {build_s:.1}s (simulated), {:.1} MiB ({}% of data)",
        index_bytes as f64 / (1 << 20) as f64,
        index_bytes * 100 / data_bytes
    );

    // Contamination scan.
    let snap = table.snapshot().unwrap();
    let mut mean_latency = 0.0;
    for probe in &eval_set {
        let t0 = clock.now_micros();
        let out = rot
            .search(
                &table,
                &snap,
                "text",
                &Query::Substring {
                    pattern: probe.as_bytes(),
                    k: 100,
                },
            )
            .unwrap();
        let secs = (clock.now_micros() - t0) as f64 / 1e6;
        mean_latency += secs / eval_set.len() as f64;
        println!(
            "  {:<55} → {} leak(s) [{:.2}s simulated]",
            format!("{:.50}…", probe),
            out.matches.len(),
            secs
        );
    }

    // Where does "contamination checking" sit on the phase diagram? A lab
    // running ~1k checks/month over a 304 GB corpus:
    let scale = 304e9 / data_bytes as f64;
    let approaches = Approaches {
        copy_data: ApproachCosts {
            index_cost: 0.0,
            cost_per_month: prices::dedicated_monthly(
                prices::R6G_LARGE_SEARCH_HOURLY,
                index_bytes as f64 * scale,
            ),
            cost_per_query: 0.0,
        },
        brute_force: ApproachCosts {
            index_cost: 0.0,
            cost_per_month: cpm_storage(data_bytes as f64 * scale),
            cost_per_query: cpq_from_latency(
                304e9 / (8.0 * 400e6),
                8.0,
                prices::R6I_4XLARGE_HOURLY,
            ),
        },
        rottnest: ApproachCosts {
            index_cost: build_s * scale / 3600.0 * prices::R6I_4XLARGE_HOURLY,
            cost_per_month: cpm_storage((data_bytes + index_bytes) as f64 * scale),
            cost_per_query: cpq_from_latency(mean_latency, 1.0, prices::R6I_4XLARGE_HOURLY),
        },
    };
    let diagram = PhaseDiagram::compute(&approaches);
    let w = diagram.winner_at(12.0, 12_000.0);
    println!(
        "\nTCO at 12 months × 12k checks: winner = {} \
         (rottnest TCO ${:.0} vs brute ${:.0} vs dedicated ${:.0})",
        w.name(),
        approaches.rottnest.tco(12.0, 12_000.0),
        approaches.brute_force.tco(12.0, 12_000.0),
        approaches.copy_data.tco(12.0, 12_000.0),
    );
}

fn rottnest_bench_config() -> rottnest::RottnestConfig {
    rottnest::RottnestConfig::default()
}
