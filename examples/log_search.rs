//! Observability log search — the paper's motivating workload: a log lake
//! with high-cardinality trace ids, searched rarely but urgently, while the
//! lake keeps ingesting, compacting and deleting underneath the index.
//!
//! Uses the **filesystem** object-store backend, so you can inspect the
//! artifacts under `/tmp/rottnest-log-search/` afterwards.
//!
//! ```sh
//! cargo run --release -p rottnest-examples --bin log_search
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rottnest::{invariants, IndexKind, Query, Rottnest, RottnestConfig};
use rottnest_format::{ColumnData, DataType, Field, RecordBatch, Schema};
use rottnest_lake::{Table, TableConfig};
use rottnest_object_store::{FsStore, ObjectStore};

fn trace_id(rng: &mut StdRng) -> Vec<u8> {
    (0..16).map(|_| rng.gen()).collect()
}

fn main() {
    let root = std::env::temp_dir().join("rottnest-log-search");
    let _ = std::fs::remove_dir_all(&root);
    let store = FsStore::open(&root).expect("open fs store");
    println!("object store at {}", root.display());

    let schema = Schema::new(vec![
        Field::new("trace_id", DataType::Binary),
        Field::new("line", DataType::Utf8),
    ]);
    let table = Table::create(store.as_ref(), "logs", &schema, TableConfig::default()).unwrap();
    let rot = Rottnest::new(store.as_ref(), "logs-idx", RottnestConfig::default());

    // Ingest three batches of "kubernetes" logs; index after each (the lazy,
    // consistent-on-demand protocol — indexing never blocks ingestion).
    let mut rng = StdRng::seed_from_u64(42);
    let mut interesting: Vec<(Vec<u8>, String)> = Vec::new();
    for batch_no in 0..3 {
        let mut ids = Vec::new();
        let mut lines = Vec::new();
        for i in 0..2_000u32 {
            let id = trace_id(&mut rng);
            let level = ["INFO", "WARN", "ERROR"][rng.gen_range(0..3usize)];
            let line = format!(
                "{level} pod=frontend-{} reconcile attempt {i} took {}ms",
                rng.gen_range(0..40),
                rng.gen_range(1..500),
            );
            if i == 999 {
                interesting.push((id.clone(), line.clone()));
            }
            ids.push(id);
            lines.push(line);
        }
        table
            .append(
                &RecordBatch::new(
                    schema.clone(),
                    vec![
                        ColumnData::from_blobs(&ids),
                        ColumnData::from_strings(&lines),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
            .unwrap();
        rot.index(&table, IndexKind::Substring, "line").unwrap();
        println!("batch {batch_no}: ingested 2000 lines, indexes up to date");
    }

    // The lake compacts its small files — invalidating index postings —
    // and Rottnest keeps answering correctly via its snapshot filter.
    table.compact(u64::MAX).unwrap();
    println!("lake compacted 3 files into 1 (old index postings now stale)");

    let snap = table.snapshot().unwrap();
    let (wanted_id, wanted_line) = &interesting[1];
    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq {
                key: wanted_id,
                k: 5,
            },
        )
        .unwrap();
    println!(
        "trace lookup after compaction: {} match(es), brute-scanned {} file(s) as fallback",
        out.matches.len(),
        out.stats.files_brute_scanned
    );
    assert_eq!(out.matches.len(), 1);

    // Re-index to cover the compacted file, compact the index files, vacuum.
    rot.index(&table, IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap();
    rot.index(&table, IndexKind::Substring, "line").unwrap();
    rot.compact(IndexKind::Uuid { key_len: 16 }, "trace_id")
        .unwrap();
    rot.compact(IndexKind::Substring, "line").unwrap();
    let report = rot.vacuum(&table).unwrap();
    println!(
        "maintenance: re-indexed, compacted, vacuum removed {} records ({} objects spared by timeout)",
        report.records_removed, report.objects_spared
    );

    let out = rot
        .search(
            &table,
            &snap,
            "trace_id",
            &Query::UuidEq {
                key: wanted_id,
                k: 5,
            },
        )
        .unwrap();
    assert_eq!(out.matches.len(), 1);
    println!(
        "trace lookup after re-index: found without brute force ({} files scanned)",
        out.stats.files_brute_scanned
    );

    // Substring search for the exact log line.
    let needle = &wanted_line[..wanted_line.len().min(30)];
    let out = rot
        .search(
            &table,
            &snap,
            "line",
            &Query::Substring {
                pattern: needle.as_bytes(),
                k: 5,
            },
        )
        .unwrap();
    println!("substring {:?} → {} match(es)", needle, out.matches.len());

    // Protocol invariants hold at every quiescent point.
    invariants::verify_all(store.as_ref(), "logs-idx").unwrap();
    let stats = store.stats();
    println!(
        "invariants OK | store traffic: {} GETs / {} PUTs / {:.1} MiB read",
        stats.gets,
        stats.puts,
        stats.bytes_read as f64 / (1 << 20) as f64
    );
}
